//! Subgraph-isomorphism matching of patterns in graphs (§2.1).
//!
//! A match of `Q[x̄]` in `G` is an injective mapping `h` from pattern nodes
//! to graph nodes such that (a) node labels satisfy `L(h(u)) ⪯ L_Q(u)` and
//! (b) the pattern edges between every ordered node pair can be assigned
//! *distinct* graph edges with `⪯`-compatible labels. On simple graphs this
//! is exactly the paper's bijection-to-a-subgraph semantics; on multigraphs
//! it is the natural generalisation.
//!
//! The matcher is a VF2-flavoured backtracking search over a
//! [`CompiledPattern`] — a search plan plus per-variable candidate filters
//! built **once** per pattern and reused across every pivot and level:
//!
//! * pattern nodes are bound in a BFS order rooted at the **pivot**,
//!   preferring highly-constrained (concrete-labelled, many edges to bound
//!   nodes) variables first;
//! * each step extends the partial assignment along one *anchor* edge; a
//!   concrete anchor label walks the graph's label-partitioned adjacency
//!   slice directly instead of filtering the full CSR;
//! * candidates are pruned by per-variable neighbour-label-frequency (NLF)
//!   demands precompiled from the pattern's concrete edge labels;
//! * injectivity is an O(1) mark-array lookup, and all multiset
//!   pair-feasibility demands are precompiled — the inner loop allocates
//!   nothing;
//! * results stream through a callback ([`std::ops::ControlFlow`]) so
//!   callers can count, early-exit, or materialise into a [`MatchSet`].
//!
//! Pivot-anchored entry points ([`for_each_match_at`], [`pivot_image`])
//! exploit the data locality of §4.1: all candidate matches pivoted at `v`
//! live in the `d_Q`-neighbourhood of `v`. Callers that re-enter per pivot
//! (e.g. the incremental monitor) should build one [`CompiledPattern`] and
//! a reusable [`Matcher`] instead of calling the free functions per pivot.
//!
//! A naive, independently-written oracle lives in [`crate::reference`];
//! a proptest suite pins the two implementations to identical match sets.

use std::ops::ControlFlow;

use gfd_graph::{Graph, LabelId, NodeId};

use crate::match_set::MatchSet;
use crate::pattern::{PLabel, Pattern, Var};

/// Precomputed search plan for matching one pattern.
#[derive(Debug)]
pub struct MatchPlan {
    /// Variable binding order; `order\[0\]` is the start variable (the
    /// pivot for [`MatchPlan::new`], any variable for [`MatchPlan::rooted`]).
    order: Vec<Var>,
    /// Steps binding `order[1..]`.
    steps: Vec<Step>,
}

#[derive(Debug)]
struct Step {
    var: Var,
    /// Anchor edge to an already-bound variable; `None` when the pattern is
    /// disconnected and this variable starts a new component.
    anchor: Option<Anchor>,
    /// Precompiled feasibility checks for the ordered pairs whose pattern
    /// edges become fully bound once `var` is assigned.
    pair_checks: Vec<PairCheck>,
}

#[derive(Debug)]
struct Anchor {
    bound_var: Var,
    /// `true`: pattern edge `bound_var → var` (walk out-edges of the image);
    /// `false`: pattern edge `var → bound_var` (walk in-edges).
    outgoing: bool,
    label: PLabel,
}

/// Precompiled multiset feasibility for one ordered variable pair: the
/// pattern edges between `(a, b)` must be assignable to distinct graph
/// edges between the images. Concrete-label demands and the single-edge
/// fast path are resolved at compile time so the runtime check performs no
/// allocation and no pattern scans. Shared with the incremental join
/// (`crate::incremental`), which compiles one check per closing extension.
#[derive(Debug)]
pub(crate) struct PairCheck {
    a: Var,
    b: Var,
    /// Total pattern edges between the pair.
    need_total: usize,
    /// Fast path when `need_total == 1`: the sole edge's label.
    single: Option<PLabel>,
    /// Per-concrete-label demand (Hall's condition on the label classes;
    /// wildcards are covered by the total).
    demand: Box<[(LabelId, usize)]>,
}

impl PairCheck {
    pub(crate) fn compile(q: &Pattern, a: Var, b: Var) -> PairCheck {
        let edges = q.edges_between(a, b);
        debug_assert!(!edges.is_empty());
        let single = if edges.len() == 1 {
            Some(q.edges()[edges[0]].label)
        } else {
            None
        };
        let mut demand: Vec<(LabelId, usize)> = Vec::new();
        for &pe in &edges {
            if let PLabel::Is(l) = q.edges()[pe].label {
                match demand.iter_mut().find(|(x, _)| *x == l) {
                    Some(d) => d.1 += 1,
                    None => demand.push((l, 1)),
                }
            }
        }
        PairCheck {
            a,
            b,
            need_total: edges.len(),
            single,
            demand: demand.into_boxed_slice(),
        }
    }

    /// Whether the graph edges between `(ha, hb)` can cover the pair's
    /// pattern edges (distinctness by counting — Hall's condition for this
    /// label-partitioned bipartite assignment).
    #[inline]
    pub(crate) fn feasible(&self, g: &Graph, ha: NodeId, hb: NodeId) -> bool {
        if let Some(want) = self.single {
            return match want {
                // One concrete edge: binary-search the packed labelled
                // neighbour slice (sorted by destination) for the target.
                PLabel::Is(l) => g.out_nbrs_labeled(ha, l).binary_search(&hb).is_ok(),
                PLabel::Wildcard => g.has_any_edge(ha, hb),
            };
        }
        let (graph_edges, edge_labels) = g.edges_between_labeled(ha, hb);
        if graph_edges.len() < self.need_total {
            return false;
        }
        for &(l, need) in self.demand.iter() {
            let avail = edge_labels.iter().filter(|&&el| el == l).count();
            if avail < need {
                return false;
            }
        }
        true
    }
}

/// Per-variable candidate filter: label, degree, and NLF demands derived
/// from the pattern's edges at compile time.
#[derive(Debug)]
struct VarFilter {
    label: PLabel,
    out_degree: usize,
    in_degree: usize,
    /// `(edge label, out demand, in demand)` for every concrete label on an
    /// edge incident to the variable — the NLF pruning condition.
    nlf: Box<[(LabelId, usize, usize)]>,
}

impl VarFilter {
    fn compile(q: &Pattern, v: Var) -> VarFilter {
        let mut nlf: Vec<(LabelId, usize, usize)> = Vec::new();
        let mut bump =
            |l: LabelId, out: usize, inn: usize| match nlf.iter_mut().find(|(x, _, _)| *x == l) {
                Some(d) => {
                    d.1 += out;
                    d.2 += inn;
                }
                None => nlf.push((l, out, inn)),
            };
        for e in q.edges() {
            if let PLabel::Is(l) = e.label {
                if e.src == v {
                    bump(l, 1, 0);
                }
                if e.dst == v {
                    bump(l, 0, 1);
                }
            }
        }
        VarFilter {
            label: q.node_label(v),
            out_degree: q.out_degree(v),
            in_degree: q.in_degree(v),
            nlf: nlf.into_boxed_slice(),
        }
    }

    /// Whether `v` can be the image of this variable.
    #[inline]
    fn admits(&self, g: &Graph, v: NodeId) -> bool {
        if !self.label.admits(g.node_label(v))
            || g.out_degree(v) < self.out_degree
            || g.in_degree(v) < self.in_degree
        {
            return false;
        }
        self.nlf.iter().all(|&(l, out_need, in_need)| {
            (out_need == 0 || g.out_label_degree(v, l) >= out_need)
                && (in_need == 0 || g.in_label_degree(v, l) >= in_need)
        })
    }
}

impl MatchPlan {
    /// Builds a plan for `q` rooted at its pivot. The plan is independent of
    /// any graph.
    pub fn new(q: &Pattern) -> MatchPlan {
        MatchPlan::rooted(q, q.pivot())
    }

    /// Builds a plan whose binding order is re-rooted at `start` — the bound
    /// query plan of §4.1's locality argument: seeding the search at a known
    /// image of `start` confines exploration to that node's
    /// `d_Q`-neighbourhood, walked through the same CSR labeled-run
    /// iterators as the full plan.
    pub fn rooted(q: &Pattern, start: Var) -> MatchPlan {
        let n = q.node_count();
        assert!(start < n, "start variable out of range");
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut steps = Vec::with_capacity(n.saturating_sub(1));

        visited[start] = true;
        order.push(start);

        while order.len() < n {
            // Choose the next variable: prefer most edges to bound vars,
            // then concrete label, then smallest index (determinism). The
            // ascending scan makes "first strict improvement wins" exactly
            // the smallest-index tie-break.
            let mut best: Option<(usize, bool, Var)> = None;
            for v in 0..n {
                if visited[v] {
                    continue;
                }
                let bound_edges = q
                    .incident(v)
                    .iter()
                    .filter(|&&(e, _)| {
                        let edge = q.edges()[e];
                        let other = if edge.src == v { edge.dst } else { edge.src };
                        visited[other]
                    })
                    .count();
                let concrete = !q.node_label(v).is_wildcard();
                let better = match best {
                    None => true,
                    Some((be, bc, _)) => (bound_edges, concrete) > (be, bc),
                };
                if better {
                    best = Some((bound_edges, concrete, v));
                }
            }
            let (_, _, var) = best.expect("unvisited variable must exist");

            // Anchor: some edge from `var` to a bound variable, preferring a
            // concrete edge label.
            let mut anchor: Option<Anchor> = None;
            for &(e, _) in q.incident(var) {
                let edge = q.edges()[e];
                let (other, outgoing) = if edge.src == var {
                    (edge.dst, false) // pattern edge var -> other
                } else {
                    (edge.src, true) // pattern edge other -> var
                };
                if edge.src == edge.dst {
                    continue; // self-loop: no anchor, handled by pair checks
                }
                if !visited[other] {
                    continue;
                }
                let candidate = Anchor {
                    bound_var: other,
                    outgoing,
                    label: edge.label,
                };
                let prefer = anchor
                    .as_ref()
                    .map(|a| a.label.is_wildcard() && !candidate.label.is_wildcard())
                    .unwrap_or(true);
                if prefer {
                    anchor = Some(candidate);
                }
            }

            visited[var] = true;
            order.push(var);

            // Pairs completed by binding `var`.
            let mut seen_pairs: Vec<(Var, Var)> = Vec::new();
            let mut pair_checks: Vec<PairCheck> = Vec::new();
            for &(e, _) in q.incident(var) {
                let edge = q.edges()[e];
                if visited[edge.src] && visited[edge.dst] {
                    let pair = (edge.src, edge.dst);
                    if !seen_pairs.contains(&pair) {
                        seen_pairs.push(pair);
                        pair_checks.push(PairCheck::compile(q, pair.0, pair.1));
                    }
                }
            }

            steps.push(Step {
                var,
                anchor,
                pair_checks,
            });
        }

        // Self-loops on the start variable are not covered by any step;
        // verify them in the root candidate filter via a synthetic
        // step-less check.
        MatchPlan { order, steps }
    }

    /// The binding order (first entry is the start variable).
    pub fn order(&self) -> &[Var] {
        &self.order
    }
}

/// A pattern compiled for repeated matching: the [`MatchPlan`] plus
/// per-variable candidate filters and the start variable's self-loop check.
/// Build it once per pattern and reuse it across every pivot node and every
/// level — the per-pivot `MatchPlan::new` recompilation this replaces
/// dominated anchored matching.
///
/// [`CompiledPattern::new`] roots the plan at the pattern's pivot;
/// [`CompiledPattern::compile_bound`] pins the start at an arbitrary
/// variable, which makes [`Matcher::for_each_at`] a *bound query*: seed any
/// variable's image and enumerate only the matches through that node.
#[derive(Debug)]
pub struct CompiledPattern {
    q: Pattern,
    plan: MatchPlan,
    filters: Vec<VarFilter>,
    /// The variable the plan is rooted at (`order\[0\]`).
    start: Var,
    /// Feasibility of start-variable self-loops (not covered by any step).
    start_loop: Option<PairCheck>,
}

impl CompiledPattern {
    /// Compiles `q` rooted at its pivot (graph-independent).
    pub fn new(q: &Pattern) -> CompiledPattern {
        CompiledPattern::compile_bound(q, q.pivot())
    }

    /// Compiles `q` with the search pinned to start at `start_var`:
    /// [`Matcher::for_each_at`] then seeds `start_var` (rather than the
    /// pivot) with the queried node and explores only its k-hop
    /// neighbourhood. The pivot and match-row layout are unchanged — only
    /// the binding order moves.
    pub fn compile_bound(q: &Pattern, start_var: Var) -> CompiledPattern {
        let plan = MatchPlan::rooted(q, start_var);
        let filters = (0..q.node_count())
            .map(|v| VarFilter::compile(q, v))
            .collect();
        let start_loop = if q.edges_between(start_var, start_var).is_empty() {
            None
        } else {
            Some(PairCheck::compile(q, start_var, start_var))
        };
        CompiledPattern {
            q: q.clone(),
            plan,
            filters,
            start: start_var,
            start_loop,
        }
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.q
    }

    /// The variable the plan is rooted at — the pattern's pivot for
    /// [`CompiledPattern::new`], the pinned variable for
    /// [`CompiledPattern::compile_bound`].
    pub fn start_var(&self) -> Var {
        self.start
    }

    /// The underlying search plan.
    pub fn plan(&self) -> &MatchPlan {
        &self.plan
    }

    /// A reusable matcher over `g` (holds the scratch buffers; reuse it
    /// across pivots to amortise them).
    pub fn matcher<'a>(&'a self, g: &'a Graph) -> Matcher<'a> {
        self.matcher_from(g, MatcherScratch::new())
    }

    /// A matcher over `g` reusing caller-owned scratch buffers. Recover the
    /// scratch with [`Matcher::into_scratch`] to carry it to the next
    /// pattern — the work-stealing runtime keeps one scratch per worker so
    /// the O(|V|) injectivity mark array is allocated once per thread, not
    /// once per work unit.
    pub fn matcher_from<'a>(&'a self, g: &'a Graph, mut scratch: MatcherScratch) -> Matcher<'a> {
        scratch.prepare(self.q.node_count(), g.node_count());
        Matcher {
            cp: self,
            g,
            scratch,
        }
    }
}

/// Reusable matcher buffers: the assignment vector and the O(1)-injectivity
/// mark array. Independent of any particular pattern — `prepare` resizes the
/// assignment to the pattern's arity and grows the mark array to the graph's
/// node count (marks are invariantly all-false between searches, so growth
/// never needs clearing).
#[derive(Debug, Default)]
pub struct MatcherScratch {
    assignment: Vec<NodeId>,
    used: Vec<bool>,
}

impl MatcherScratch {
    /// Empty scratch (buffers grow on first use).
    pub fn new() -> MatcherScratch {
        MatcherScratch::default()
    }

    fn prepare(&mut self, arity: usize, node_count: usize) {
        self.assignment.clear();
        self.assignment.resize(arity, NodeId(u32::MAX));
        if self.used.len() < node_count {
            self.used.resize(node_count, false);
        }
    }
}

/// Reusable search state for one `(CompiledPattern, Graph)` pairing: the
/// assignment vector and the O(1)-injectivity mark array are allocated once
/// and shared by every pivot probed through this matcher.
#[derive(Debug)]
pub struct Matcher<'a> {
    cp: &'a CompiledPattern,
    g: &'a Graph,
    scratch: MatcherScratch,
}

impl Matcher<'_> {
    /// Streams matches whose start-variable image is `start_node` (the
    /// pivot image for plans from [`CompiledPattern::new`]; the pinned
    /// variable's image for [`CompiledPattern::compile_bound`] plans).
    pub fn for_each_at<F>(&mut self, start_node: NodeId, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(&[NodeId]) -> ControlFlow<()>,
    {
        let cp = self.cp;
        let start = cp.start;
        if !cp.filters[start].admits(self.g, start_node) {
            return ControlFlow::Continue(());
        }
        if let Some(check) = &cp.start_loop {
            if !check.feasible(self.g, start_node, start_node) {
                return ControlFlow::Continue(());
            }
        }
        let mut search = Search {
            cp,
            g: self.g,
            assignment: &mut self.scratch.assignment,
            used: &mut self.scratch.used,
            sink: &mut f,
        };
        search.assignment[start] = start_node;
        search.used[start_node.index()] = true;
        let flow = search.step(1);
        search.used[start_node.index()] = false;
        flow
    }

    /// Streams every match of the pattern in the graph.
    pub fn for_each<F>(&mut self, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(&[NodeId]) -> ControlFlow<()>,
    {
        match self.cp.q.node_label(self.cp.start) {
            PLabel::Is(l) => {
                let candidates = self.g.nodes_with_label(l);
                for &v in candidates {
                    self.for_each_at(v, &mut f)?;
                }
            }
            PLabel::Wildcard => {
                for i in 0..self.g.node_count() {
                    self.for_each_at(NodeId::from_index(i), &mut f)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Whether any match has start-variable image `v` (pivoted at `v` for
    /// pivot-rooted plans).
    pub fn has_match_at(&mut self, v: NodeId) -> bool {
        self.for_each_at(v, |_| ControlFlow::Break(())).is_break()
    }

    /// Materialises every match anchored at the given pivot candidates, in
    /// candidate order, appending to `out`. A contiguous slice of a pivot
    /// candidate list is thus a *resumable work unit*: concatenating the
    /// outputs of consecutive slices reproduces exactly the matches of the
    /// whole list — the `(CompiledPattern, pivot-range)` unit the
    /// work-stealing runtime schedules. Returns the number of matches
    /// appended.
    pub fn match_pivots_into(&mut self, pivots: &[NodeId], out: &mut MatchSet) -> usize {
        let before = out.len();
        for &v in pivots {
            let _ = self.for_each_at(v, |m| {
                out.push(m);
                ControlFlow::Continue(())
            });
        }
        out.len() - before
    }

    /// Recovers the scratch buffers for reuse with another pattern.
    pub fn into_scratch(self) -> MatcherScratch {
        self.scratch
    }

    /// The distinct start-variable images over all matches, sorted — the
    /// pivot image `Q(G, z)` for pivot-rooted plans.
    pub fn pivot_image(&mut self) -> Vec<NodeId> {
        let mut out = Vec::new();
        match self.cp.q.node_label(self.cp.start) {
            PLabel::Is(l) => {
                let candidates = self.g.nodes_with_label(l);
                for &v in candidates {
                    if self.has_match_at(v) {
                        out.push(v);
                    }
                }
            }
            PLabel::Wildcard => {
                for i in 0..self.g.node_count() {
                    let v = NodeId::from_index(i);
                    if self.has_match_at(v) {
                        out.push(v);
                    }
                }
            }
        }
        // Candidates are scanned in ascending order per label class; a
        // multi-class scan may interleave, so normalise.
        out.sort_unstable();
        out.dedup();
        out
    }
}

struct Search<'a, F> {
    cp: &'a CompiledPattern,
    g: &'a Graph,
    assignment: &'a mut Vec<NodeId>,
    used: &'a mut Vec<bool>,
    sink: &'a mut F,
}

impl<F> Search<'_, F>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    fn step(&mut self, depth: usize) -> ControlFlow<()> {
        if depth == self.cp.plan.order.len() {
            return (self.sink)(self.assignment);
        }
        let g = self.g;
        let step = &self.cp.plan.steps[depth - 1];
        match &step.anchor {
            Some(anchor) => {
                let image = self.assignment[anchor.bound_var];
                // A concrete anchor label walks its contiguous
                // label-partitioned packed-neighbour slice; a wildcard
                // walks the full CSR's. Both are sorted with equal
                // neighbours consecutive, so the last-tried guard dedups
                // parallel edges without a set — and neither touches the
                // edge table.
                let nbrs: &[NodeId] = match (anchor.label, anchor.outgoing) {
                    (PLabel::Is(l), true) => g.out_nbrs_labeled(image, l),
                    (PLabel::Is(l), false) => g.in_nbrs_labeled(image, l),
                    (PLabel::Wildcard, true) => g.out_nbrs(image),
                    (PLabel::Wildcard, false) => g.in_nbrs(image),
                };
                let mut last_tried: Option<NodeId> = None;
                for &cand in nbrs {
                    if last_tried == Some(cand) {
                        continue;
                    }
                    last_tried = Some(cand);
                    self.try_candidate(depth, step, cand)?;
                }
            }
            None => {
                // Disconnected component: scan label candidates globally.
                match self.cp.q.node_label(step.var) {
                    PLabel::Is(l) => {
                        let candidates = g.nodes_with_label(l);
                        for &cand in candidates {
                            self.try_candidate(depth, step, cand)?;
                        }
                    }
                    PLabel::Wildcard => {
                        for i in 0..g.node_count() {
                            self.try_candidate(depth, step, NodeId::from_index(i))?;
                        }
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }

    #[inline]
    fn try_candidate(&mut self, depth: usize, step: &Step, cand: NodeId) -> ControlFlow<()> {
        if self.used[cand.index()] || !self.cp.filters[step.var].admits(self.g, cand) {
            return ControlFlow::Continue(());
        }
        self.assignment[step.var] = cand;
        for check in &step.pair_checks {
            if !check.feasible(self.g, self.assignment[check.a], self.assignment[check.b]) {
                return ControlFlow::Continue(());
            }
        }
        self.used[cand.index()] = true;
        let flow = self.step(depth + 1);
        self.used[cand.index()] = false;
        flow
    }
}

/// Streams every match of `q` in `g` to `f`; `f` may break to stop early.
///
/// Compiles the pattern once; callers matching the same pattern repeatedly
/// (per pivot, per update) should hold a [`CompiledPattern`] + [`Matcher`].
pub fn for_each_match<F>(q: &Pattern, g: &Graph, f: F) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    CompiledPattern::new(q).matcher(g).for_each(f)
}

/// Streams matches whose pivot image is `pivot_node`.
pub fn for_each_match_at<F>(q: &Pattern, g: &Graph, pivot_node: NodeId, f: F) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    CompiledPattern::new(q)
        .matcher(g)
        .for_each_at(pivot_node, f)
}

/// Materialises all matches of `q` in `g`.
pub fn find_all(q: &Pattern, g: &Graph) -> MatchSet {
    let mut out = MatchSet::new(q.node_count());
    let _ = for_each_match(q, g, |m| {
        out.push(m);
        ControlFlow::Continue(())
    });
    out
}

/// Whether `q` has at least one match in `g`.
pub fn has_match(q: &Pattern, g: &Graph) -> bool {
    for_each_match(q, g, |_| ControlFlow::Break(())).is_break()
}

/// Whether `q` has a match pivoted at `v`.
pub fn has_match_at(q: &Pattern, g: &Graph, v: NodeId) -> bool {
    for_each_match_at(q, g, v, |_| ControlFlow::Break(())).is_break()
}

/// The pivot image set `Q(G, z)`: distinct nodes `h(z)` over all matches
/// (§4.2). Enumeration early-exits per pivot candidate, so this is far
/// cheaper than materialising all matches.
pub fn pivot_image(q: &Pattern, g: &Graph) -> Vec<NodeId> {
    CompiledPattern::new(q).matcher(g).pivot_image()
}

/// `supp(Q, G) = |Q(G, z)|` — the paper's pattern support (§4.2).
pub fn pattern_support(q: &Pattern, g: &Graph) -> usize {
    pivot_image(q, g).len()
}

/// Counts all matches (enumerates; use [`pattern_support`] for support).
pub fn count_matches(q: &Pattern, g: &Graph) -> usize {
    let mut n = 0usize;
    let _ = for_each_match(q, g, |_| {
        n += 1;
        ControlFlow::Continue(())
    });
    n
}
#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphBuilder;

    fn pl(g: &Graph, name: &str) -> PLabel {
        PLabel::Is(g.interner().label(name))
    }

    /// Fig. 1's G1-style graph: two persons, one product, one create edge.
    fn g1() -> Graph {
        let mut b = GraphBuilder::new();
        let john = b.add_node("person");
        let jack = b.add_node("person");
        let film = b.add_node("product");
        b.set_attr(john, "name", "John");
        b.set_attr(jack, "name", "Jack");
        b.add_edge(john, film, "create");
        b.add_edge(jack, film, "create");
        b.build()
    }

    #[test]
    fn single_node_pattern_matches_label_class() {
        let g = g1();
        let q = Pattern::single(pl(&g, "person"));
        assert_eq!(count_matches(&q, &g), 2);
        assert_eq!(pattern_support(&q, &g), 2);
        let w = Pattern::single(PLabel::Wildcard);
        assert_eq!(count_matches(&w, &g), 3);
    }

    #[test]
    fn edge_pattern_q1() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        let ms = find_all(&q, &g);
        assert_eq!(ms.len(), 2);
        assert_eq!(pattern_support(&q, &g), 2); // two distinct persons
        let qp = q.with_pivot(1);
        assert_eq!(pattern_support(&qp, &g), 1); // one distinct product
    }

    #[test]
    fn wildcard_node_and_edge() {
        let g = g1();
        let q = Pattern::edge(PLabel::Wildcard, PLabel::Wildcard, pl(&g, "product"));
        assert_eq!(count_matches(&q, &g), 2);
        let q = Pattern::edge(pl(&g, "person"), PLabel::Wildcard, PLabel::Wildcard);
        assert_eq!(count_matches(&q, &g), 2);
    }

    #[test]
    fn no_match_for_absent_structure() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "product"), pl(&g, "create"), pl(&g, "person"));
        assert!(!has_match(&q, &g));
        assert_eq!(pattern_support(&q, &g), 0);
    }

    /// The paper's Q3: two persons that are parents of each other.
    #[test]
    fn cyclic_pattern_q3() {
        let mut b = GraphBuilder::new();
        let owen = b.add_node("person");
        let john = b.add_node("person");
        let other = b.add_node("person");
        b.add_edge(owen, john, "parent");
        b.add_edge(john, owen, "parent");
        b.add_edge(john, other, "parent");
        let g = b.build();

        let person = pl(&g, "person");
        let parent = pl(&g, "parent");
        let q = Pattern::edge(person, parent, person);
        assert_eq!(count_matches(&q, &g), 3);

        // Close the cycle: x -> y and y -> x.
        let q3 = q.extend(&crate::pattern::Extension {
            src: crate::pattern::End::Var(1),
            dst: crate::pattern::End::Var(0),
            label: parent,
        });
        assert_eq!(count_matches(&q3, &g), 2); // (owen,john) and (john,owen)
        assert_eq!(pattern_support(&q3, &g), 2);
    }

    /// Q2 of Fig. 1: city located in two distinct wildcard places.
    #[test]
    fn q2_star_with_wildcards() {
        let mut b = GraphBuilder::new();
        let sp = b.add_node("city");
        let ru = b.add_node("country");
        let fl = b.add_node("city");
        let lone = b.add_node("city");
        let us = b.add_node("country");
        b.add_edge(sp, ru, "located");
        b.add_edge(sp, fl, "located");
        b.add_edge(lone, us, "located");
        let g = b.build();

        let city = pl(&g, "city");
        let located = pl(&g, "located");
        let q2 = Pattern::new(
            vec![city, PLabel::Wildcard, PLabel::Wildcard],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: located,
                },
                crate::pattern::PEdge {
                    src: 0,
                    dst: 2,
                    label: located,
                },
            ],
            0,
        );
        // Injectivity: y ≠ z, so Saint Petersburg matches twice (y/z swap),
        // the lone city matches never.
        assert_eq!(count_matches(&q2, &g), 2);
        assert_eq!(pattern_support(&q2, &g), 1);
        assert_eq!(pivot_image(&q2, &g), vec![sp]);
    }

    #[test]
    fn injectivity_enforced() {
        // Graph: a -> a self loop vs pattern x -> y (distinct vars).
        let mut b = GraphBuilder::new();
        let a = b.add_node("t");
        b.add_edge(a, a, "r");
        let g = b.build();
        let t = pl(&g, "t");
        let r = pl(&g, "r");
        let q = Pattern::edge(t, r, t);
        assert_eq!(count_matches(&q, &g), 0);

        // Pattern with a self-loop does match.
        let ql = Pattern::new(
            vec![t],
            vec![crate::pattern::PEdge {
                src: 0,
                dst: 0,
                label: r,
            }],
            0,
        );
        assert_eq!(count_matches(&ql, &g), 1);
    }

    #[test]
    fn parallel_pattern_edges_need_distinct_graph_edges() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("a");
        let y = b.add_node("b");
        b.add_edge(x, y, "r");
        let g1 = b.build();

        let a = pl(&g1, "a");
        let bb = pl(&g1, "b");
        // Two parallel wildcard edges demand two distinct graph edges.
        let q = Pattern::new(
            vec![a, bb],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: PLabel::Wildcard,
                },
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: PLabel::Wildcard,
                },
            ],
            0,
        );
        assert_eq!(count_matches(&q, &g1), 0);

        let mut b = GraphBuilder::new();
        let x = b.add_node("a");
        let y = b.add_node("b");
        b.add_edge(x, y, "r");
        b.add_edge(x, y, "s");
        let g2 = b.build();
        assert_eq!(count_matches(&q, &g2), 1);

        // Concrete demand exceeding availability fails.
        let r = pl(&g2, "r");
        let q2 = Pattern::new(
            vec![pl(&g2, "a"), pl(&g2, "b")],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: r,
                },
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: r,
                },
            ],
            0,
        );
        assert_eq!(count_matches(&q2, &g2), 0);
    }

    #[test]
    fn anchored_matching() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        assert!(has_match_at(&q, &g, NodeId(0)));
        assert!(has_match_at(&q, &g, NodeId(1)));
        assert!(!has_match_at(&q, &g, NodeId(2))); // product can't be pivot x
        let mut seen = 0;
        let _ = for_each_match_at(&q, &g, NodeId(0), |m| {
            assert_eq!(m[0], NodeId(0));
            seen += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let g = g1();
        let q = Pattern::single(pl(&g, "person"));
        let mut seen = 0;
        let flow = for_each_match(&q, &g, |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert!(flow.is_break());
        assert_eq!(seen, 1);
    }

    #[test]
    fn triangle_pattern() {
        // a -> b -> c -> a plus a chord; pattern = directed triangle.
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("t");
        let n1 = b.add_node("t");
        let n2 = b.add_node("t");
        let n3 = b.add_node("t");
        b.add_edge(n0, n1, "r");
        b.add_edge(n1, n2, "r");
        b.add_edge(n2, n0, "r");
        b.add_edge(n0, n3, "r");
        let g = b.build();
        let t = pl(&g, "t");
        let r = pl(&g, "r");
        let tri = Pattern::new(
            vec![t, t, t],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: r,
                },
                crate::pattern::PEdge {
                    src: 1,
                    dst: 2,
                    label: r,
                },
                crate::pattern::PEdge {
                    src: 2,
                    dst: 0,
                    label: r,
                },
            ],
            0,
        );
        // Each rotation is a distinct match vector.
        assert_eq!(count_matches(&tri, &g), 3);
        assert_eq!(pattern_support(&tri, &g), 3);
    }

    #[test]
    fn pattern_larger_than_graph_cannot_match() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("t");
        let c = b.add_node("t");
        b.add_edge(a, c, "r");
        let g = b.build();
        let t = pl(&g, "t");
        let r = pl(&g, "r");
        // 3 distinct variables over a 2-node graph: injectivity kills it.
        let q = Pattern::new(
            vec![t, t, t],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: r,
                },
                crate::pattern::PEdge {
                    src: 1,
                    dst: 2,
                    label: r,
                },
            ],
            0,
        );
        assert_eq!(count_matches(&q, &g), 0);
        assert!(!has_match(&q, &g));
    }

    #[test]
    fn wildcard_pivot_enumerates_all_nodes() {
        let g = g1();
        let q = Pattern::edge(PLabel::Wildcard, pl(&g, "create"), PLabel::Wildcard);
        // Pivot is the wildcard source: both persons match.
        assert_eq!(pivot_image(&q, &g).len(), 2);
        let q_at_dst = q.with_pivot(1);
        assert_eq!(pivot_image(&q_at_dst, &g), vec![NodeId(2)]);
    }

    #[test]
    fn empty_graph_matches_nothing() {
        let g = Graph::empty();
        let q = Pattern::single(PLabel::Wildcard);
        assert_eq!(count_matches(&q, &g), 0);
        assert_eq!(pattern_support(&q, &g), 0);
    }

    #[test]
    fn match_plan_orders_pivot_first() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        let plan = MatchPlan::new(&q);
        assert_eq!(plan.order()[0], q.pivot());
        let plan2 = MatchPlan::new(&q.with_pivot(1));
        assert_eq!(plan2.order()[0], 1);
    }

    /// Pins the variable-selection tie-break: when candidates tie on
    /// (edges-to-bound, concrete-label), the smallest variable index wins.
    /// (The seed code carried a dead `v < bv` clause here — `v` iterates
    /// ascending, so the first strict improvement already implements the
    /// smallest-index rule; this test keeps that order from drifting.)
    #[test]
    fn match_plan_tie_breaks_on_smallest_index() {
        let g = g1();
        let t = pl(&g, "person");
        let r = pl(&g, "create");
        // Star: pivot 0 with identical edges to 1, 2, 3 — all tie.
        let star = Pattern::new(
            vec![t, t, t, t],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: r,
                },
                crate::pattern::PEdge {
                    src: 0,
                    dst: 2,
                    label: r,
                },
                crate::pattern::PEdge {
                    src: 0,
                    dst: 3,
                    label: r,
                },
            ],
            0,
        );
        assert_eq!(MatchPlan::new(&star).order(), &[0, 1, 2, 3]);
        // A wildcard node loses the concrete tie-break even at lower index.
        let mixed = star.upgrade_node(1);
        assert_eq!(MatchPlan::new(&mixed).order(), &[0, 2, 3, 1]);
    }

    #[test]
    fn compiled_pattern_reused_across_pivots() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        let cp = CompiledPattern::new(&q);
        assert_eq!(cp.pattern(), &q);
        assert_eq!(cp.plan().order()[0], q.pivot());
        let mut m = cp.matcher(&g);
        let mut total = 0usize;
        for v in g.nodes() {
            let _ = m.for_each_at(v, |mm| {
                assert_eq!(mm[0], v);
                total += 1;
                ControlFlow::Continue(())
            });
        }
        assert_eq!(total, count_matches(&q, &g));
        assert!(m.has_match_at(NodeId(0)));
        assert!(!m.has_match_at(NodeId(2)));
        assert_eq!(m.pivot_image(), vec![NodeId(0), NodeId(1)]);
    }

    /// NLF pruning must reject pivots lacking the demanded labelled edges
    /// without changing results: a person with only `follow` out-edges
    /// cannot anchor a `create` pattern.
    #[test]
    fn nlf_filter_agrees_with_enumeration() {
        let mut b = GraphBuilder::new();
        let p1 = b.add_node("person");
        let p2 = b.add_node("person");
        let f = b.add_node("product");
        b.add_edge(p1, f, "create");
        b.add_edge(p2, p1, "follow");
        let g = b.build();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        assert_eq!(pivot_image(&q, &g), vec![p1]);
        assert!(!has_match_at(&q, &g, p2));
    }

    #[test]
    fn dense_pair_with_mixed_labels() {
        // Pattern demands r + wildcard between one pair; graph has r,s,t.
        let mut b = GraphBuilder::new();
        let x = b.add_node("a");
        let y = b.add_node("b");
        b.add_edge(x, y, "r");
        b.add_edge(x, y, "s");
        b.add_edge(x, y, "t");
        let g = b.build();
        let q = Pattern::new(
            vec![pl(&g, "a"), pl(&g, "b")],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: pl(&g, "r"),
                },
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: PLabel::Wildcard,
                },
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: PLabel::Wildcard,
                },
            ],
            0,
        );
        assert_eq!(count_matches(&q, &g), 1);
        // Demand 4 distinct edges: impossible.
        let q4 = q.extend(&crate::pattern::Extension {
            src: crate::pattern::End::Var(0),
            dst: crate::pattern::End::Var(1),
            label: PLabel::Wildcard,
        });
        assert_eq!(count_matches(&q4, &g), 0);
    }

    /// Pivot-range matching: consecutive slices of a pivot list concatenate
    /// to exactly the whole list's matches, and the scratch survives reuse
    /// across patterns and graphs.
    #[test]
    fn pivot_range_units_concatenate() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        let cp = CompiledPattern::new(&q);
        let pivots: Vec<NodeId> = g.nodes().collect();

        let mut whole = MatchSet::new(q.node_count());
        let mut scratch = MatcherScratch::new();
        let mut m = cp.matcher_from(&g, scratch);
        let n = m.match_pivots_into(&pivots, &mut whole);
        assert_eq!(n, whole.len());
        scratch = m.into_scratch();

        for cut in 0..=pivots.len() {
            let mut parts = MatchSet::new(q.node_count());
            let mut m = cp.matcher_from(&g, scratch);
            m.match_pivots_into(&pivots[..cut], &mut parts);
            m.match_pivots_into(&pivots[cut..], &mut parts);
            scratch = m.into_scratch();
            assert_eq!(parts, whole, "cut={cut}");
        }

        // Reuse the same scratch with a different pattern on the same graph.
        let single = Pattern::single(pl(&g, "person"));
        let cps = CompiledPattern::new(&single);
        let mut ms = MatchSet::new(1);
        let mut m = cps.matcher_from(&g, scratch);
        m.match_pivots_into(&pivots, &mut ms);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn disconnected_pattern_cross_product() {
        let g = g1();
        let q = Pattern::new(vec![pl(&g, "person"), pl(&g, "product")], vec![], 0);
        // 2 persons × 1 product.
        assert_eq!(count_matches(&q, &g), 2);
    }

    /// Bound plans re-root the binding order at the pinned variable; the
    /// pivot and row layout are untouched.
    #[test]
    fn bound_plan_re_roots_order() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        let cp = CompiledPattern::compile_bound(&q, 1);
        assert_eq!(cp.start_var(), 1);
        assert_eq!(cp.plan().order(), &[1, 0]);
        assert_eq!(cp.pattern().pivot(), q.pivot());
        // Pivot-rooted compilation is the start_var == pivot special case.
        assert_eq!(CompiledPattern::new(&q).start_var(), q.pivot());
    }

    /// Seeding a bound plan at a node enumerates exactly the full matcher's
    /// rows whose pinned variable maps to that node.
    #[test]
    fn bound_matching_equals_filtered_full_matching() {
        let g = g1();
        let q = Pattern::edge(pl(&g, "person"), pl(&g, "create"), pl(&g, "product"));
        let full = find_all(&q, &g);
        for start in 0..q.node_count() {
            let cp = CompiledPattern::compile_bound(&q, start);
            let mut m = cp.matcher(&g);
            for v in g.nodes() {
                let mut bound: Vec<Vec<NodeId>> = Vec::new();
                let _ = m.for_each_at(v, |mm| {
                    assert_eq!(mm[start], v);
                    bound.push(mm.to_vec());
                    ControlFlow::Continue(())
                });
                bound.sort_unstable();
                let mut expect: Vec<Vec<NodeId>> = full
                    .iter()
                    .filter(|mm| mm[start] == v)
                    .map(<[NodeId]>::to_vec)
                    .collect();
                expect.sort_unstable();
                assert_eq!(bound, expect, "start={start} v={v:?}");
            }
        }
    }

    /// Start-variable self-loops are enforced by bound plans (the pinned
    /// variable takes over the root's synthetic self-loop check).
    #[test]
    fn bound_plan_checks_start_self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("t");
        let c = b.add_node("t");
        b.add_edge(a, a, "r");
        b.add_edge(a, c, "s");
        let g = b.build();
        let t = pl(&g, "t");
        // x0 -s-> x1 with a self-loop r on x1.
        let q = Pattern::new(
            vec![t, t],
            vec![
                crate::pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: pl(&g, "s"),
                },
                crate::pattern::PEdge {
                    src: 1,
                    dst: 1,
                    label: pl(&g, "r"),
                },
            ],
            0,
        );
        assert_eq!(count_matches(&q, &g), 0); // only a has the loop, but a -s-> a absent
                                              // Same interner order as `g`: "r" before "s".
        let mut bg = GraphBuilder::new();
        let x = bg.add_node("t");
        let y = bg.add_node("t");
        bg.add_edge(y, y, "r");
        bg.add_edge(x, y, "s");
        let g2 = bg.build();
        let cp = CompiledPattern::compile_bound(&q, 1);
        let mut m = cp.matcher(&g2);
        assert!(m.has_match_at(y));
        assert!(!m.has_match_at(x)); // no self-loop r at x
    }
}
