//! Flat storage for pattern matches.
//!
//! A match of `Q[x̄]` in `G` is the vector `h(x̄)` (§2.1). Discovery keeps
//! millions of matches per pattern, so they are stored flattened in one
//! contiguous buffer rather than as nested vectors.

use gfd_graph::NodeId;

/// A set of fixed-arity matches stored row-major in one buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchSet {
    arity: usize,
    data: Vec<NodeId>,
}

impl MatchSet {
    /// Empty set of matches of the given arity (`|x̄|`).
    pub fn new(arity: usize) -> MatchSet {
        assert!(arity > 0, "matches must bind at least one variable");
        MatchSet {
            arity,
            data: Vec::new(),
        }
    }

    /// Empty set with capacity for `n` matches.
    pub fn with_capacity(arity: usize, n: usize) -> MatchSet {
        assert!(arity > 0, "matches must bind at least one variable");
        MatchSet {
            arity,
            data: Vec::with_capacity(arity * n),
        }
    }

    /// The number of variables each match binds.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of matches.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// True when no match is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one match.
    ///
    /// # Panics
    /// Panics if `m.len() != arity`.
    #[inline]
    pub fn push(&mut self, m: &[NodeId]) {
        assert_eq!(m.len(), self.arity, "match arity mismatch");
        self.data.extend_from_slice(m);
    }

    /// The `i`-th match.
    #[inline]
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over matches as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// Appends all matches of `other` (same arity required).
    pub fn extend(&mut self, other: &MatchSet) {
        assert_eq!(self.arity, other.arity, "match arity mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Splits the set into `parts` nearly equal chunks (used by the parallel
    /// runtime when re-balancing skewed match sets, §6.2).
    pub fn split(&self, parts: usize) -> Vec<MatchSet> {
        assert!(parts > 0);
        let n = self.len();
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut row = 0;
        for p in 0..parts {
            let take = base + usize::from(p < extra);
            let mut ms = MatchSet::with_capacity(self.arity, take);
            for i in row..row + take {
                ms.push(self.get(i));
            }
            row += take;
            out.push(ms);
        }
        out
    }

    /// Memory footprint of the stored rows in bytes (used by the simulated
    /// cluster's communication model).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn push_get_iter() {
        let mut ms = MatchSet::new(2);
        assert!(ms.is_empty());
        ms.push(&[n(1), n(2)]);
        ms.push(&[n(3), n(4)]);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms.get(0), &[n(1), n(2)]);
        assert_eq!(ms.get(1), &[n(3), n(4)]);
        let rows: Vec<_> = ms.iter().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_enforced() {
        let mut ms = MatchSet::new(2);
        ms.push(&[n(1)]);
    }

    #[test]
    fn split_balances() {
        let mut ms = MatchSet::new(1);
        for i in 0..10 {
            ms.push(&[n(i)]);
        }
        let parts = ms.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(parts[0].get(0), &[n(0)]);
        assert_eq!(parts[2].get(2), &[n(9)]);
    }

    #[test]
    fn split_more_parts_than_rows() {
        let mut ms = MatchSet::new(1);
        ms.push(&[n(1)]);
        let parts = ms.split(4);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 1);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = MatchSet::new(2);
        a.push(&[n(1), n(2)]);
        let mut b = MatchSet::new(2);
        b.push(&[n(3), n(4)]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.byte_size(), 16);
    }
}
