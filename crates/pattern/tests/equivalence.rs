//! Equivalence suite: the optimized matcher (compiled plans,
//! label-partitioned adjacency, NLF pruning, counting feasibility) must
//! produce exactly the match sets, pivot images, and supports of the naive
//! reference matcher (index-order enumeration + explicit bipartite edge
//! matching) on random small graphs × random patterns.

use std::ops::ControlFlow;

use gfd_graph::{Graph, GraphBuilder, NodeId};
use gfd_pattern::{
    find_all, find_all_reference, for_each_match_at, pattern_support, pattern_support_reference,
    pivot_image, pivot_image_reference, CompiledPattern, PEdge, PLabel, Pattern,
};
use proptest::prelude::*;

const NODE_LABELS: usize = 3;
const EDGE_LABELS: usize = 3;

/// A graph blueprint: node labels (by index) and labelled edges.
#[derive(Clone, Debug)]
struct ProtoGraph {
    nodes: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

/// A pattern blueprint: `None` labels are wildcards.
#[derive(Clone, Debug)]
struct ProtoPattern {
    nodes: Vec<Option<usize>>,
    edges: Vec<(usize, usize, Option<usize>)>,
    pivot: usize,
}

fn graph_strategy() -> impl Strategy<Value = ProtoGraph> {
    (1usize..=6).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..NODE_LABELS, n..=n),
            prop::collection::vec((0usize..n, 0usize..n, 0usize..EDGE_LABELS), 0..=12),
        )
            .prop_map(|(nodes, edges)| ProtoGraph { nodes, edges })
    })
}

fn pattern_strategy() -> impl Strategy<Value = ProtoPattern> {
    (1usize..=4).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::option::of(0usize..NODE_LABELS), n..=n),
            prop::collection::vec(
                (0usize..n, 0usize..n, prop::option::of(0usize..EDGE_LABELS)),
                0..=5,
            ),
            0usize..n,
        )
            .prop_map(|(nodes, edges, pivot)| ProtoPattern {
                nodes,
                edges,
                pivot,
            })
    })
}

fn build_graph(p: &ProtoGraph) -> Graph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = p
        .nodes
        .iter()
        .map(|&l| b.add_node(&format!("L{l}")))
        .collect();
    for &(s, d, l) in &p.edges {
        b.add_edge(ids[s], ids[d], &format!("r{l}"));
    }
    b.build()
}

fn build_pattern(p: &ProtoPattern, g: &Graph) -> Pattern {
    let nl = |l: Option<usize>| match l {
        Some(i) => PLabel::Is(g.interner().label(&format!("L{i}"))),
        None => PLabel::Wildcard,
    };
    let el = |l: Option<usize>| match l {
        Some(i) => PLabel::Is(g.interner().label(&format!("r{i}"))),
        None => PLabel::Wildcard,
    };
    Pattern::new(
        p.nodes.iter().map(|&l| nl(l)).collect(),
        p.edges
            .iter()
            .map(|&(s, d, l)| PEdge {
                src: s,
                dst: d,
                label: el(l),
            })
            .collect(),
        p.pivot,
    )
}

fn sorted_rows(ms: &gfd_pattern::MatchSet) -> Vec<Vec<NodeId>> {
    let mut rows: Vec<Vec<NodeId>> = ms.iter().map(<[NodeId]>::to_vec).collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Identical match sets from the optimized and reference matchers.
    #[test]
    fn match_sets_agree(pg in graph_strategy(), pq in pattern_strategy()) {
        let g = build_graph(&pg);
        let q = build_pattern(&pq, &g);
        let fast = sorted_rows(&find_all(&q, &g));
        let naive = sorted_rows(&find_all_reference(&q, &g));
        prop_assert_eq!(fast, naive, "graph {:?} pattern {:?}", pg, pq);
    }

    /// Identical pivot images and supports.
    #[test]
    fn pivot_images_agree(pg in graph_strategy(), pq in pattern_strategy()) {
        let g = build_graph(&pg);
        let q = build_pattern(&pq, &g);
        prop_assert_eq!(pivot_image(&q, &g), pivot_image_reference(&q, &g));
        prop_assert_eq!(pattern_support(&q, &g), pattern_support_reference(&q, &g));
    }

    /// Per-pivot anchored matching slices the global match set exactly.
    #[test]
    fn anchored_matching_agrees(pg in graph_strategy(), pq in pattern_strategy()) {
        let g = build_graph(&pg);
        let q = build_pattern(&pq, &g);
        let all = find_all_reference(&q, &g);
        let cp = CompiledPattern::new(&q);
        let mut matcher = cp.matcher(&g);
        for v in g.nodes() {
            let mut at: Vec<Vec<NodeId>> = Vec::new();
            let _ = matcher.for_each_at(v, |m| {
                at.push(m.to_vec());
                ControlFlow::Continue(())
            });
            at.sort();
            let mut expect: Vec<Vec<NodeId>> = all
                .iter()
                .filter(|m| m[q.pivot()] == v)
                .map(<[NodeId]>::to_vec)
                .collect();
            expect.sort();
            prop_assert_eq!(at, expect, "pivot {:?} graph {:?} pattern {:?}", v, pg, pq);
        }
        // The free function (fresh compilation per call) agrees too.
        let mut n_at = 0usize;
        for v in g.nodes() {
            let _ = for_each_match_at(&q, &g, v, |_| {
                n_at += 1;
                ControlFlow::Continue(())
            });
        }
        prop_assert_eq!(n_at, all.len());
    }
}
