//! Bound-matching equivalence: a pinned-start plan
//! ([`CompiledPattern::compile_bound`]) seeded at any node must produce
//! exactly the full matcher's rows filtered to that start-variable image —
//! for *every* start variable, not just the pivot — and the union of the
//! per-node bound match sets must reassemble the full set.

use std::ops::ControlFlow;

use gfd_graph::{Graph, GraphBuilder, NodeId};
use gfd_pattern::{find_all_reference, CompiledPattern, PEdge, PLabel, Pattern};
use proptest::prelude::*;

const NODE_LABELS: usize = 3;
const EDGE_LABELS: usize = 3;

/// A graph blueprint: node labels (by index) and labelled edges.
#[derive(Clone, Debug)]
struct ProtoGraph {
    nodes: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

/// A pattern blueprint: `None` labels are wildcards.
#[derive(Clone, Debug)]
struct ProtoPattern {
    nodes: Vec<Option<usize>>,
    edges: Vec<(usize, usize, Option<usize>)>,
    pivot: usize,
}

fn graph_strategy() -> impl Strategy<Value = ProtoGraph> {
    (1usize..=6).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..NODE_LABELS, n..=n),
            prop::collection::vec((0usize..n, 0usize..n, 0usize..EDGE_LABELS), 0..=12),
        )
            .prop_map(|(nodes, edges)| ProtoGraph { nodes, edges })
    })
}

fn pattern_strategy() -> impl Strategy<Value = ProtoPattern> {
    (1usize..=4).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::option::of(0usize..NODE_LABELS), n..=n),
            prop::collection::vec(
                (0usize..n, 0usize..n, prop::option::of(0usize..EDGE_LABELS)),
                0..=5,
            ),
            0usize..n,
        )
            .prop_map(|(nodes, edges, pivot)| ProtoPattern {
                nodes,
                edges,
                pivot,
            })
    })
}

fn build_graph(p: &ProtoGraph) -> Graph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = p
        .nodes
        .iter()
        .map(|&l| b.add_node(&format!("L{l}")))
        .collect();
    for &(s, d, l) in &p.edges {
        b.add_edge(ids[s], ids[d], &format!("r{l}"));
    }
    b.build()
}

fn build_pattern(p: &ProtoPattern, g: &Graph) -> Pattern {
    let nl = |l: Option<usize>| match l {
        Some(i) => PLabel::Is(g.interner().label(&format!("L{i}"))),
        None => PLabel::Wildcard,
    };
    let el = |l: Option<usize>| match l {
        Some(i) => PLabel::Is(g.interner().label(&format!("r{i}"))),
        None => PLabel::Wildcard,
    };
    Pattern::new(
        p.nodes.iter().map(|&l| nl(l)).collect(),
        p.edges
            .iter()
            .map(|&(s, d, l)| PEdge {
                src: s,
                dst: d,
                label: el(l),
            })
            .collect(),
        p.pivot,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// For every start variable and every graph node, the bound plan's
    /// matches through that node are exactly the reference matcher's rows
    /// with that start-variable image — and their union over all nodes is
    /// the full match set.
    #[test]
    fn bound_matching_slices_full_set(pg in graph_strategy(), pq in pattern_strategy()) {
        let g = build_graph(&pg);
        let q = build_pattern(&pq, &g);
        let all = find_all_reference(&q, &g);
        for start in 0..q.node_count() {
            let cp = CompiledPattern::compile_bound(&q, start);
            prop_assert_eq!(cp.start_var(), start);
            let mut matcher = cp.matcher(&g);
            let mut union: Vec<Vec<NodeId>> = Vec::new();
            for v in g.nodes() {
                let mut at: Vec<Vec<NodeId>> = Vec::new();
                let _ = matcher.for_each_at(v, |m| {
                    at.push(m.to_vec());
                    ControlFlow::Continue(())
                });
                at.sort();
                let mut expect: Vec<Vec<NodeId>> = all
                    .iter()
                    .filter(|m| m[start] == v)
                    .map(<[NodeId]>::to_vec)
                    .collect();
                expect.sort();
                prop_assert_eq!(
                    &at, &expect,
                    "start {} node {:?} graph {:?} pattern {:?}",
                    start, v, pg, pq
                );
                union.extend(at);
            }
            union.sort();
            let mut full: Vec<Vec<NodeId>> = all.iter().map(<[NodeId]>::to_vec).collect();
            full.sort();
            prop_assert_eq!(union, full, "start {} graph {:?} pattern {:?}", start, pg, pq);
        }
    }

    /// The bound plan's unanchored enumeration (`for_each`) also matches
    /// the reference set exactly — re-rooting the search order never
    /// changes the match set.
    #[test]
    fn bound_full_enumeration_agrees(pg in graph_strategy(), pq in pattern_strategy()) {
        let g = build_graph(&pg);
        let q = build_pattern(&pq, &g);
        let mut full: Vec<Vec<NodeId>> =
            find_all_reference(&q, &g).iter().map(<[NodeId]>::to_vec).collect();
        full.sort();
        for start in 0..q.node_count() {
            let cp = CompiledPattern::compile_bound(&q, start);
            let mut rows: Vec<Vec<NodeId>> = Vec::new();
            let _ = cp.matcher(&g).for_each(|m| {
                rows.push(m.to_vec());
                ControlFlow::Continue(())
            });
            rows.sort();
            prop_assert_eq!(&rows, &full, "start {} graph {:?} pattern {:?}", start, pg, pq);
        }
    }
}
