//! Bad fixture: every panicking shape the rule catches.

/// A worker body that can abort the wave four different ways.
pub fn worker(v: &[u32], i: usize) -> u32 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("second row");
    if v.len() > 64 {
        panic!("oversized unit");
    }
    first + second + v[wrap(i, v.len())]
}

fn wrap(i: usize, n: usize) -> usize {
    i % n
}
