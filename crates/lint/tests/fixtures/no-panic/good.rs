//! Good fixture: the panic-free shapes the rule demands, plus the
//! `#[cfg(test)]` exemption.

/// Errors are plumbed, indices bounded, lookups checked.
pub fn worker(v: &[u32], i: usize) -> Option<u32> {
    let first = v.first()?;
    let second = v.get(1)?;
    let wrapped = i % v.len().max(1);
    let tail = v.get(wrapped)?;
    Some(first + second + tail)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32, 2];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
