//! Good fixture: the forbid attribute is present and the lone `unsafe`
//! carries a SAFETY comment. (Fixtures are never compiled, so the
//! contradiction between the two is invisible to rustc and irrelevant to
//! the lexical rule under test.)

#![forbid(unsafe_code)]

pub fn documented_read(v: &[u32]) -> u32 {
    // SAFETY: the slice is non-empty by the caller's contract, checked
    // one frame up, so index 0 is in bounds.
    unsafe { *v.as_ptr() }
}
