//! Bad fixture: no `#![forbid(unsafe_code)]`, and an undocumented
//! `unsafe` block.

pub fn raw_read(p: *const u32) -> u32 {
    unsafe { *p }
}
