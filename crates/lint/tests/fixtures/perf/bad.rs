//! Bad fixture: allocation churn inside a per-row loop.

use std::sync::Arc;

pub fn churn(rows: &[u32], shared: &Arc<Vec<u32>>) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        let tag = format!("row-{r}");
        let copy = rows.to_vec();
        let s = Arc::clone(shared);
        out.push(tag + &copy.len().to_string() + &s.len().to_string());
    }
    out
}

/// Full-LHS re-accumulation: every visited lattice node re-ANDs the whole
/// premise set from scratch instead of extending the parent accumulator.
pub fn relattice(premises: &[u32]) -> u32 {
    let mut total = 0;
    for cand in premises {
        total += evaluate(premises, *cand);
        total += accumulate_lhs(premises);
    }
    total
}

fn evaluate(xs: &[u32], cand: u32) -> u32 {
    xs.iter().fold(cand, |a, b| a & b)
}

fn accumulate_lhs(xs: &[u32]) -> u32 {
    xs.iter().fold(u32::MAX, |a, b| a & b)
}

/// Array-of-structs adjacency: one heap allocation per node and a pointer
/// chase per neighbour access — the layout the frozen-graph CSR replaced.
pub struct JaggedAdjacency {
    pub out: Vec<Vec<u32>>,
}

pub fn collect_jagged(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for &(s, d) in edges {
        adj[s as usize].push(d);
    }
    adj
}

/// Stand-in for the core match table, so the fixture shape mirrors the
/// real bound-validation call site.
pub struct MatchTable;

impl MatchTable {
    pub fn build(rows: &[u32]) -> usize {
        rows.len()
    }
}

/// Per-entity verdict that forfeits the bound-path win: it materialises a
/// global table to answer one pivot's question.
pub fn bound_verdict_via_table(rows: &[u32], pivot: u32) -> usize {
    let table = MatchTable::build(rows);
    table + pivot as usize
}
