//! Bad fixture: allocation churn inside a per-row loop.

use std::sync::Arc;

pub fn churn(rows: &[u32], shared: &Arc<Vec<u32>>) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        let tag = format!("row-{r}");
        let copy = rows.to_vec();
        let s = Arc::clone(shared);
        out.push(tag + &copy.len().to_string() + &s.len().to_string());
    }
    out
}
