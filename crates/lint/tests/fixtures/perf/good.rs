//! Good fixture: the same work with every allocation hoisted out of the
//! per-row loop.

use std::sync::Arc;

pub fn hoisted(rows: &[u32], shared: &Arc<Vec<u32>>) -> Vec<usize> {
    let copy = rows.to_vec();
    let s = Arc::clone(shared);
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(*r as usize + copy.len() + s.len());
    }
    out
}

/// Prefix-shared accumulation: each child is one AND against the cached
/// parent accumulator (the `stack_eval_child` shape), never a re-fold of
/// the whole premise set inside the loop.
pub fn prefix_shared(premises: &[u32]) -> u32 {
    let parent_acc = premises.iter().fold(u32::MAX, |a, b| a & b);
    let mut total = 0;
    for cand in premises {
        total += parent_acc & cand;
    }
    total
}

/// Structure-of-arrays adjacency: one flat neighbour array plus offset
/// ranges — no per-node allocations, contiguous scans.
pub struct CsrAdjacency {
    pub offsets: Vec<u32>,
    pub nbrs: Vec<u32>,
}

pub fn collect_csr(n: usize, edges: &[(u32, u32)]) -> CsrAdjacency {
    let mut counts = vec![0u32; n + 1];
    for &(s, _) in edges {
        counts[s as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let mut nbrs = vec![0u32; edges.len()];
    let mut cursor = counts.clone();
    for &(s, d) in edges {
        nbrs[cursor[s as usize] as usize] = d;
        cursor[s as usize] += 1;
    }
    CsrAdjacency {
        offsets: counts,
        nbrs,
    }
}

/// Bound verdict evaluated over the per-pivot rows directly — no global
/// table construction between the matcher and the literal checks.
pub fn bound_verdict_direct(rows: &[u32], pivot: u32) -> usize {
    rows.iter().filter(|&&r| r == pivot).count()
}
