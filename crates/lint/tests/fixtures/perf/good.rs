//! Good fixture: the same work with every allocation hoisted out of the
//! per-row loop.

use std::sync::Arc;

pub fn hoisted(rows: &[u32], shared: &Arc<Vec<u32>>) -> Vec<usize> {
    let copy = rows.to_vec();
    let s = Arc::clone(shared);
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(*r as usize + copy.len() + s.len());
    }
    out
}

/// Prefix-shared accumulation: each child is one AND against the cached
/// parent accumulator (the `stack_eval_child` shape), never a re-fold of
/// the whole premise set inside the loop.
pub fn prefix_shared(premises: &[u32]) -> u32 {
    let parent_acc = premises.iter().fold(u32::MAX, |a, b| a & b);
    let mut total = 0;
    for cand in premises {
        total += parent_acc & cand;
    }
    total
}
