//! Good fixture: the same work with every allocation hoisted out of the
//! per-row loop.

use std::sync::Arc;

pub fn hoisted(rows: &[u32], shared: &Arc<Vec<u32>>) -> Vec<usize> {
    let copy = rows.to_vec();
    let s = Arc::clone(shared);
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(*r as usize + copy.len() + s.len());
    }
    out
}
