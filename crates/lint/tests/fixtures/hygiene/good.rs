//! Good fixture: tracked markers and justified allows.

// TODO(#42): tracked — retire once the fuzz corpus lands.
fn tracked() {}

#[allow(dead_code)] // kept: exercised only by the fuzz harness target
fn justified() {
    tracked();
}
