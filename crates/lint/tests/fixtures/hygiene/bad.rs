//! Bad fixture: untracked markers, blanket allows, and a stale escape.

// TODO: fix this someday
#[allow(dead_code)]
fn stale() {}

// FIXME make it faster
#[allow(unused_variables)]
fn blanket(x: u32) {
    let _ = x;
}

// gfd-lint: allow(perf) — this escape suppresses nothing and must be reported stale
fn innocent() {}
