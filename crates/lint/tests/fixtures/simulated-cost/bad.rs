//! Bad fixture: wall-clock readings leak into cost accounting.

use std::time::Instant;
use std::time::SystemTime;

/// Charges a modelled cost from a wall-clock measurement.
pub fn charge() -> u128 {
    let t0 = Instant::now();
    let cost = t0.elapsed().as_nanos();
    cost
}
