//! Good fixture: modelled cost is a pure function of the input; wall
//! timing lives in statements that never mention cost accumulators.

use std::time::Instant;

/// The modelled unit cost: rows touched, nothing else.
pub fn unit_cost(rows: usize, adjacency: usize) -> u64 {
    (rows + adjacency) as u64
}

/// Wall timing for reporting only, kept apart from the model.
pub fn wall_nanos() -> u128 {
    let t0 = Instant::now();
    let wall = t0.elapsed();
    wall.as_nanos()
}
