//! Good fixture for `fault-boundary`: the panic boundary carries its
//! justification, and channel errors are routed into recovery.

fn documented_boundary(unit: Unit) -> Result<UnitResult, String> {
    // fault-boundary: absorbs injected and genuine unit panics so the
    // worker can report Failed and keep pulling; the unit touched no
    // shared state before this point, so a retry starts clean.
    std::panic::catch_unwind(|| process(unit)).map_err(|_| "worker panicked".to_string())
}

fn master_collect(rx: &Receiver<WorkerReply>) -> Result<WorkerReply, FaultError> {
    match rx.recv() {
        Ok(reply) => Ok(reply),
        Err(_) => Err(FaultError::WorkerLost { worker: 0 }),
    }
}

fn master_collect_deadline(
    rx: &Receiver<WorkerReply>,
    t: Duration,
) -> Result<Option<WorkerReply>, FaultError> {
    match rx.recv_timeout(t) {
        Ok(reply) => Ok(Some(reply)),
        Err(RecvTimeoutError::Timeout) => Ok(None),
        Err(RecvTimeoutError::Disconnected) => Err(FaultError::WorkerLost { worker: 0 }),
    }
}
