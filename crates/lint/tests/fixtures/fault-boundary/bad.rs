//! Bad fixture for `fault-boundary`: an undocumented panic boundary and
//! channel results consumed with panicking combinators.

fn undocumented_boundary(unit: Unit) -> Result<UnitResult, String> {
    // Absorbs panics, but says nothing about what failure it handles or
    // why worker state stays consistent afterwards.
    std::panic::catch_unwind(|| process(unit)).map_err(|_| "worker panicked".to_string())
}

fn master_collect(rx: &Receiver<WorkerReply>) -> WorkerReply {
    // A crashed worker closes its channel: this panics the master instead
    // of recovering.
    rx.recv().unwrap()
}

fn master_collect_deadline(rx: &Receiver<WorkerReply>, t: Duration) -> WorkerReply {
    rx.recv_timeout(t).expect("worker reply")
}
