//! Good fixture: hash maps used for membership only; ordered iteration
//! goes through a BTreeMap.

use std::collections::{BTreeMap, HashMap};

/// Point lookups never observe iteration order.
pub fn lookup(counts: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    counts.get(&k).copied()
}

/// Ordered collections may be iterated freely.
pub fn ordered(ranked: &BTreeMap<u32, u32>) -> Vec<u32> {
    ranked.values().copied().collect()
}
