//! Bad fixture: hash-order iteration reaches an output vector.

use std::collections::HashMap;

/// Collects values in hasher order — the returned Vec is nondeterministic.
pub fn leak_order(counts: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out: Vec<u32> = counts.values().copied().collect();
    for pair in counts {
        out.push(*pair.1);
    }
    out
}
