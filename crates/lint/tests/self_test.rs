//! Lint self-tests: the fixture corpus proves every rule fires on its
//! bad fixture (and only there), and proptests prove the lexer is total —
//! arbitrary token soup round-trips without panicking.

use gfd_lint::{lint_source, rule_names};
use proptest::prelude::*;

/// One fixture directory per rule, named exactly after the rule so the
/// engine's `fixtures/<rule>/` scoping puts each file in exactly one
/// rule's jurisdiction.
const RULES: &[(&str, usize)] = &[
    ("nondeterminism", 2), // .values() call + for-in loop
    ("no-panic", 4),       // unwrap, expect, panic!, computed index
    ("unsafe-code", 2),    // missing forbid + SAFETY-less unsafe
    ("simulated-cost", 2), // SystemTime + Instant-into-cost statement
    ("perf", 8), // format!, .to_vec(), Arc::clone, evaluate, accumulate_lhs in a loop; 2× Vec<Vec<; MatchTable::build
    ("hygiene", 5), // 2 untracked markers, 2 blanket allows, stale escape
    ("fault-boundary", 3), // undocumented catch_unwind + recv unwrap + recv_timeout expect
];

fn fixture(rule: &str, kind: &str) -> (String, String) {
    let path = format!(
        "{}/tests/fixtures/{rule}/{kind}.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"));
    let rel = format!("crates/lint/tests/fixtures/{rule}/{kind}.rs");
    (rel, text)
}

#[test]
fn corpus_covers_every_shipped_rule() {
    let shipped = rule_names();
    let covered: Vec<&str> = RULES.iter().map(|&(r, _)| r).collect();
    assert_eq!(shipped, covered, "fixture corpus out of sync with rules");
}

#[test]
fn each_rule_fires_on_its_bad_fixture_and_nowhere_else() {
    for &(rule, min_diags) in RULES {
        let (rel, text) = fixture(rule, "bad");
        let diags = lint_source(&rel, &text);
        assert!(
            diags.len() >= min_diags,
            "{rule}: expected >= {min_diags} findings, got {diags:?}"
        );
        for d in &diags {
            assert_eq!(
                d.rule, rule,
                "{rule}/bad.rs produced a foreign finding: {d}"
            );
        }
    }
}

#[test]
fn good_fixtures_are_clean() {
    for &(rule, _) in RULES {
        let (rel, text) = fixture(rule, "good");
        let diags = lint_source(&rel, &text);
        assert!(diags.is_empty(), "{rule}/good.rs flagged: {diags:?}");
    }
}

#[test]
fn bad_fixtures_of_one_rule_are_invisible_to_all_others() {
    // Re-lint each bad fixture under every *other* rule's directory name:
    // the offending constructs sit outside that rule's scope, so nothing
    // (except engine-level escape hygiene) may fire.
    for &(rule, _) in RULES {
        let (_, text) = fixture(rule, "bad");
        for &(other, _) in RULES {
            if other == rule || other == "hygiene" {
                // Escape comments in a fixture still get engine-level
                // hygiene treatment under any path; skip that pairing.
                continue;
            }
            let rel = format!("crates/lint/tests/fixtures/{other}/transplant.rs");
            for d in lint_source(&rel, &text) {
                assert!(
                    d.rule == other || d.rule == "hygiene",
                    "{rule}/bad.rs transplanted into {other}/ fired {d}"
                );
            }
        }
    }
}

/// Deliberately gnarly inputs: keywords, unterminated strings and block
/// comments, raw/byte strings, lifetimes vs chars, unicode, NUL.
const FRAGMENTS: &[&str] = &[
    "fn",
    "main",
    "x1",
    "_y",
    "Struct",
    "r#match",
    "self",
    " ",
    "\t",
    "\n",
    "\r\n",
    "0",
    "42",
    "0x_ff",
    "1_000u64",
    "3.14",
    "1e9",
    "\"str\"",
    "\"unterminated",
    "\"esc\\\"q\"",
    "'c'",
    "'\\n'",
    "'a",
    "'static",
    "// line comment",
    "//",
    "/* block */",
    "/* open",
    "/* nested /* deep */ */",
    "::",
    ";",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    "=>",
    "->",
    "#",
    "!",
    "&&",
    "||",
    "b\"bytes\"",
    "r\"raw\"",
    "é",
    "λ",
    "→",
    "\u{0}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total and lossless on concatenations of hostile
    /// fragments, and the whole lint pipeline survives them.
    #[test]
    fn lexer_round_trips_token_soup(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..64)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let toks = gfd_lint::lexer::lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        prop_assert_eq!(rebuilt, src.clone());
        // Line numbers never go backwards.
        prop_assert!(toks.windows(2).all(|w| w[0].line <= w[1].line));
        // And the full rule pipeline is panic-free on the soup.
        let _ = lint_source("crates/core/src/soup.rs", &src);
    }

    /// Arbitrary (lossily-decoded) byte soup also round-trips.
    #[test]
    fn lexer_round_trips_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255u8, 0..96)
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = gfd_lint::lexer::lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        prop_assert_eq!(rebuilt, src);
    }
}
