//! Rule engine: file context, escape comments, and the workspace walk.
//!
//! The engine lexes one file, builds a [`FileContext`] (code-token index,
//! `#[cfg(test)]` line ranges, comment maps), runs every rule, then
//! applies inline escapes:
//!
//! ```text
//! // gfd-lint: allow(<rule>) — <justification>
//! ```
//!
//! An escape suppresses diagnostics of `<rule>` on its own line or the
//! line directly below. The justification is mandatory — an escape
//! without one does **not** suppress and is itself reported (under
//! `hygiene`), as is a stale escape that no longer suppresses anything.
//! Doc comments (`///`, `//!`) are inert: they can *describe* the escape
//! syntax without enacting it.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{all_rules, rule_names};
use std::fmt;
use std::path::{Path, PathBuf};

/// A single finding: rule, file, 1-based line, message.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that produced this finding.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub rel: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: deny({}): {}",
            self.rel, self.line, self.rule, self.msg
        )
    }
}

/// Sentinel returned for out-of-range code-token lookups so rules can
/// look ahead without bounds checks.
const EOF_TOK: Tok<'static> = Tok {
    kind: TokKind::Ws,
    text: "",
    line: 0,
};

/// Everything a rule needs to inspect one file.
pub struct FileContext<'a> {
    /// Workspace-relative path (unix separators).
    pub rel: &'a str,
    /// The full token stream, whitespace and comments included.
    pub toks: &'a [Tok<'a>],
    /// Indices into `toks` of the code tokens (no whitespace/comments).
    code: Vec<usize>,
    /// `test_line[line]` is true inside a `#[cfg(test)]` module (1-based).
    test_line: Vec<bool>,
    /// `comment_line[line]` is true if a comment token starts there.
    comment_line: Vec<bool>,
    /// `safety_line[line]` is true if a `SAFETY:` comment starts there.
    safety_line: Vec<bool>,
}

impl<'a> FileContext<'a> {
    /// Builds the context for `rel` from its token stream.
    pub fn new(rel: &'a str, toks: &'a [Tok<'a>]) -> Self {
        let nlines = toks.last().map_or(0, |t| t.line as usize) + 2;
        let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
        let mut comment_line = vec![false; nlines];
        let mut safety_line = vec![false; nlines];
        for t in toks {
            if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                comment_line[t.line as usize] = true;
                if t.text.contains("SAFETY:") {
                    safety_line[t.line as usize] = true;
                }
            }
        }
        let test_line = mark_test_lines(toks, &code, nlines);
        FileContext {
            rel,
            toks,
            code,
            test_line,
            comment_line,
            safety_line,
        }
    }

    /// Number of code tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The `ci`-th code token, or an empty sentinel past the end.
    pub fn ctok(&self, ci: usize) -> &Tok<'a> {
        match self.code.get(ci) {
            Some(&ti) => &self.toks[ti],
            None => &EOF_TOK,
        }
    }

    /// Text of the `ci`-th code token (empty past the end).
    pub fn ct(&self, ci: usize) -> &'a str {
        self.ctok(ci).text
    }

    /// Whether `line` falls inside a `#[cfg(test)]` module.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_line.get(line as usize).copied().unwrap_or(false)
    }

    /// Whether a `// SAFETY:` comment appears on `line` or within the
    /// three lines above it.
    pub fn has_safety_comment(&self, line: u32) -> bool {
        let line = line as usize;
        (line.saturating_sub(3)..=line).any(|l| self.safety_line.get(l).copied().unwrap_or(false))
    }

    /// Whether any comment starts on `line` (used for same-line
    /// justifications next to `#[allow(…)]`).
    pub fn has_trailing_comment(&self, line: u32) -> bool {
        self.comment_line
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Convenience constructor for a [`Diagnostic`] in this file.
    pub fn diag(&self, rule: &'static str, line: u32, msg: String) -> Diagnostic {
        Diagnostic {
            rule,
            rel: self.rel.to_string(),
            line,
            msg,
        }
    }
}

/// Marks the lines covered by `#[cfg(test)] mod … { … }` ranges.
fn mark_test_lines(toks: &[Tok<'_>], code: &[usize], nlines: usize) -> Vec<bool> {
    let mut test = vec![false; nlines];
    let ct = |ci: usize| -> &Tok<'_> {
        match code.get(ci) {
            Some(&ti) => &toks[ti],
            None => &EOF_TOK,
        }
    };
    let mut ci = 0;
    while ci < code.len() {
        // Match `#[cfg(test)]` exactly.
        let is_cfg_test = ct(ci).text == "#"
            && ct(ci + 1).text == "["
            && ct(ci + 2).text == "cfg"
            && ct(ci + 3).text == "("
            && ct(ci + 4).text == "test"
            && ct(ci + 5).text == ")"
            && ct(ci + 6).text == "]";
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        // Skip any further attributes, then find the item's opening `{`
        // (module or fn) and mark through its matching `}`.
        let mut k = ci + 7;
        while ct(k).text == "#" && ct(k + 1).text == "[" {
            let mut depth = 0i32;
            k += 1;
            while k < code.len() {
                match ct(k).text {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        while k < code.len() && ct(k).text != "{" && ct(k).text != ";" {
            k += 1;
        }
        if ct(k).text == "{" {
            let start_line = ct(ci).line as usize;
            let mut depth = 0i32;
            while k < code.len() {
                match ct(k).text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end_line = ct(k.min(code.len().saturating_sub(1))).line as usize;
            let last = end_line.min(nlines - 1);
            for t in test.iter_mut().take(last + 1).skip(start_line) {
                *t = true;
            }
        }
        ci = k.max(ci + 1);
    }
    test
}

/// A parsed `gfd-lint: allow(…)` escape comment.
#[derive(Clone, Debug)]
pub struct Escape {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Whether a real justification follows the closing paren.
    pub justified: bool,
}

const ESCAPE_KEY: &str = "gfd-lint: allow(";

/// Extracts escapes from plain (non-doc) line comments.
pub fn parse_escapes(toks: &[Tok<'_>]) -> Vec<Escape> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments are inert so documentation can quote the syntax.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = t.text.find(ESCAPE_KEY) else {
            continue;
        };
        let after = &t.text[pos + ESCAPE_KEY.len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rule = after[..close].trim().to_string();
        let rest = after[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '-' | '—' | '–' | ':'));
        // A justification must be real prose, not a dash or a word.
        let justified = rest.chars().filter(|c| c.is_alphanumeric()).count() >= 12;
        out.push(Escape {
            rule,
            line: t.line,
            justified,
        });
    }
    out
}

/// Lints one file: runs every rule, then applies escapes and appends
/// escape-hygiene findings. Returns diagnostics sorted by line.
pub fn lint_source(rel: &str, text: &str) -> Vec<Diagnostic> {
    let toks = lex(text);
    let ctx = FileContext::new(rel, &toks);
    let mut raw = Vec::new();
    for rule in all_rules() {
        rule.check(&ctx, &mut raw);
    }
    let escapes = parse_escapes(&toks);
    let known = rule_names();
    let mut used = vec![false; escapes.len()];
    let mut out = Vec::new();
    for d in raw {
        let hit = escapes
            .iter()
            .position(|e| e.rule == d.rule && (e.line == d.line || e.line + 1 == d.line));
        match hit {
            Some(ei) if escapes[ei].justified => used[ei] = true,
            Some(ei) => {
                // Matched but unjustified: the diagnostic stands and the
                // escape itself is reported below.
                used[ei] = true;
                out.push(d);
            }
            None => out.push(d),
        }
    }
    for (e, &u) in escapes.iter().zip(&used) {
        if !known.contains(&e.rule.as_str()) {
            out.push(ctx.diag(
                "hygiene",
                e.line,
                format!("escape references unknown rule `{}`", e.rule),
            ));
        } else if !u {
            out.push(ctx.diag(
                "hygiene",
                e.line,
                format!(
                    "stale escape: `allow({})` no longer suppresses anything — delete it",
                    e.rule
                ),
            ));
        } else if !e.justified {
            out.push(ctx.diag(
                "hygiene",
                e.line,
                format!(
                    "escape `allow({})` lacks a justification — say why the invariant holds",
                    e.rule
                ),
            ));
        }
    }
    out.sort_by_key(|d| (d.line, d.rule));
    out
}

/// Directories never descended into during the workspace walk. Fixture
/// corpora are linted only by the self-tests, with per-rule scoping.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Collects every `.rs` file under `root`, sorted for deterministic
/// output (directory read order is OS-dependent).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Lints every workspace `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for path in workspace_files(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(lint_source(&rel, &text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_suppresses_with_justification() {
        let src = "struct S { m: FxHashMap<u32, u32> }\n\
                   fn f(s: &S) -> usize {\n\
                   // gfd-lint: allow(nondeterminism) — values feed a commutative sum, order free\n\
                   s.m.values().count()\n\
                   }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn unjustified_escape_keeps_diag_and_reports_escape() {
        let src = "struct S { m: FxHashMap<u32, u32> }\n\
                   fn f(s: &S) -> usize {\n\
                   // gfd-lint: allow(nondeterminism)\n\
                   s.m.values().count()\n\
                   }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.iter().any(|d| d.rule == "nondeterminism"));
        assert!(diags.iter().any(|d| d.rule == "hygiene"));
    }

    #[test]
    fn stale_escape_is_reported() {
        let src = "// gfd-lint: allow(perf) — this used to cover a format call in a loop here\n\
                   fn f() {}\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("stale escape"));
    }

    #[test]
    fn unknown_rule_escape_is_reported() {
        let src = "// gfd-lint: allow(made-up-rule) — justification text that is long enough\n\
                   fn f() {}\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("unknown rule"));
    }

    #[test]
    fn doc_comments_do_not_enact_escapes() {
        let src = "/// Write `// gfd-lint: allow(perf) — reason` above the line.\n\
                   fn f() {}\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "struct S { m: FxHashMap<u32, u32> }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn f(s: &super::S) -> usize { s.m.values().count() }\n\
                   }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        let src = "struct S { m: FxHashMap<u32, u32> }\n\
                   fn f(s: &S) -> usize { s.m.values().count() }\n";
        let diags = lint_source("crates/cli/src/x.rs", src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
