//! A hand-rolled Rust lexer for the lint pass.
//!
//! The build image has no crates.io access, so — like the vendored
//! `rand`/`proptest` stand-ins — this is a small, self-contained token
//! scanner rather than a `syn`/`proc-macro2` dependency. It is built for
//! *linting*, not compilation:
//!
//! * **total**: every byte of the input lands in exactly one token, so
//!   concatenating token texts reproduces the source verbatim (the
//!   round-trip property pinned by the lexer proptest), and arbitrary
//!   token soup never panics — unterminated strings and comments simply
//!   run to end of input;
//! * **trivia-preserving**: whitespace and comments are tokens too, so
//!   rules can inspect escape comments, `// SAFETY:` annotations, and
//!   `TODO` markers (the hygiene rule's issue-reference check) with
//!   exact line spans;
//! * **approximate where it is safe to be**: numeric literals are scanned
//!   greedily and multi-character operators arrive as single-character
//!   [`TokKind::Punct`] tokens — rules match short token sequences, which
//!   is both simpler and more robust than a full grammar.

use std::fmt;

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// A lifetime such as `'a` (without a closing quote).
    Lifetime,
    /// Numeric literal, scanned greedily with suffixes.
    Num,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting-aware.
    BlockComment,
    /// A single punctuation character.
    Punct,
    /// A run of whitespace.
    Ws,
    /// Any byte sequence the scanner has no better answer for.
    Unknown,
}

/// One token: classification, verbatim text, and the 1-based line of its
/// first character.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    /// Classification.
    pub kind: TokKind,
    /// The exact source slice.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl fmt::Display for Tok<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}({:?})@{}", self.kind, self.text, self.line)
    }
}

impl Tok<'_> {
    /// Whether this token is code (not whitespace or a comment).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_cont(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Lexes `src` into a total, round-tripping token stream.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let bytes = src.as_bytes();
    let mut toks: Vec<Tok<'_>> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let c = bytes[i];
        let kind = match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\r' | b'\n') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                TokKind::Ws
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                TokKind::LineComment
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                TokKind::BlockComment
            }
            b'"' => {
                i += 1;
                scan_plain_string(bytes, &mut i, &mut line, b'"');
                TokKind::Str
            }
            b'r' | b'b' => scan_prefixed(bytes, &mut i, &mut line),
            b'\'' => scan_quote(bytes, &mut i, &mut line),
            _ if is_ident_start(c) => {
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            _ if c.is_ascii_digit() => {
                scan_number(bytes, &mut i);
                TokKind::Num
            }
            _ if c < 0x80 => {
                i += 1;
                TokKind::Punct
            }
            _ => {
                // Non-ASCII: decode one char; alphanumerics join idents.
                match src[i..].chars().next() {
                    Some(ch) if ch.is_alphanumeric() || ch == '_' => {
                        i += ch.len_utf8();
                        while i < bytes.len() {
                            if bytes[i] < 0x80 {
                                if !is_ident_cont(bytes[i]) {
                                    break;
                                }
                                i += 1;
                            } else {
                                match src[i..].chars().next() {
                                    Some(ch) if ch.is_alphanumeric() || ch == '_' => {
                                        i += ch.len_utf8()
                                    }
                                    _ => break,
                                }
                            }
                        }
                        TokKind::Ident
                    }
                    Some(ch) => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += ch.len_utf8();
                        TokKind::Unknown
                    }
                    None => {
                        i += 1;
                        TokKind::Unknown
                    }
                }
            }
        };
        toks.push(Tok {
            kind,
            text: &src[start..i],
            line: start_line,
        });
    }
    toks
}

/// Scans past the body of a `"…"`-style string (the opening quote is
/// already consumed); stops after the closing quote or at end of input.
fn scan_plain_string(bytes: &[u8], i: &mut usize, line: &mut u32, quote: u8) {
    while *i < bytes.len() {
        match bytes[*i] {
            b'\\' => *i += if *i + 1 < bytes.len() { 2 } else { 1 },
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            b if b == quote => {
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

/// Scans a raw string body: `#…#"` already seen up to and including the
/// opening quote; the terminator is `"` followed by `hashes` `#`s.
fn scan_raw_string(bytes: &[u8], i: &mut usize, line: &mut u32, hashes: usize) {
    while *i < bytes.len() {
        if bytes[*i] == b'\n' {
            *line += 1;
        }
        if bytes[*i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(*i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                *i += 1 + hashes;
                return;
            }
        }
        *i += 1;
    }
}

/// Dispatches an `r`/`b`-prefixed token: raw string (`r"…"`, `r#"…"#`,
/// `br"…"`), byte string (`b"…"`), byte char (`b'…'`), or a plain
/// identifier that merely starts with `r`/`b`.
fn scan_prefixed(bytes: &[u8], i: &mut usize, line: &mut u32) -> TokKind {
    let c = bytes[*i];
    let raw_start = if c == b'r' {
        Some(*i + 1)
    } else if bytes.get(*i + 1) == Some(&b'r') {
        Some(*i + 2)
    } else {
        None
    };
    if let Some(mut j) = raw_start {
        let mut hashes = 0usize;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if bytes.get(j) == Some(&b'"') {
            *i = j + 1;
            scan_raw_string(bytes, i, line, hashes);
            return TokKind::Str;
        }
    }
    if c == b'b' {
        match bytes.get(*i + 1) {
            Some(&b'"') => {
                *i += 2;
                scan_plain_string(bytes, i, line, b'"');
                return TokKind::Str;
            }
            Some(&b'\'') => {
                // b'…': always a byte literal, never a lifetime.
                *i += 2;
                scan_plain_string(bytes, i, line, b'\'');
                return TokKind::Char;
            }
            _ => {}
        }
    }
    // Just an identifier starting with r/b.
    *i += 1;
    while *i < bytes.len() && is_ident_cont(bytes[*i]) {
        *i += 1;
    }
    TokKind::Ident
}

/// Disambiguates `'` into a char literal or a lifetime.
fn scan_quote(bytes: &[u8], i: &mut usize, line: &mut u32) -> TokKind {
    let j = *i + 1;
    match bytes.get(j) {
        Some(&b'\\') => {
            // Escaped char literal.
            *i = j;
            scan_plain_string(bytes, i, line, b'\'');
            TokKind::Char
        }
        Some(&b) if is_ident_start(b) => {
            let mut k = j;
            while k < bytes.len() && is_ident_cont(bytes[k]) {
                k += 1;
            }
            if bytes.get(k) == Some(&b'\'') {
                *i = k + 1;
                TokKind::Char
            } else {
                *i = k;
                TokKind::Lifetime
            }
        }
        Some(&b) if b < 0x80 && b != b'\'' && bytes.get(j + 1) == Some(&b'\'') => {
            // Things like '1' or '('. The closing quote makes it a char;
            // anything else falls through to a bare punct quote below.
            *i = j + 2;
            TokKind::Char
        }
        _ => {
            *i = j;
            TokKind::Punct
        }
    }
}

/// Scans a numeric literal greedily: digits, radix prefixes, underscores,
/// suffixes, one decimal point (but never `..`), and signed exponents.
fn scan_number(bytes: &[u8], i: &mut usize) {
    let mut seen_dot = false;
    *i += 1;
    while *i < bytes.len() {
        let b = bytes[*i];
        if is_ident_cont(b) {
            // Also covers hex digits, suffixes (u64), exponent letters.
            if (b == b'e' || b == b'E')
                && matches!(bytes.get(*i + 1), Some(&b'+') | Some(&b'-'))
                && bytes.get(*i + 2).is_some_and(u8::is_ascii_digit)
            {
                *i += 2;
            }
            *i += 1;
        } else if b == b'.'
            && !seen_dot
            && bytes.get(*i + 1).is_some_and(u8::is_ascii_digit)
            && bytes.get(*i + 1) != Some(&b'.')
        {
            seen_dot = true;
            *i += 1;
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn roundtrips_everyday_rust() {
        let src = r##"
//! Module docs.
use std::collections::HashMap; // trailing
fn main() {
    let r#type = 1_000u64;
    let s = "str \" with quote";
    let raw = r#"raw "body" here"#;
    let b = b"bytes";
    let c = 'x';
    let nl = '\n';
    let lt: &'static str = s;
    /* block /* nested */ comment */
    for i in 0..10 { println!("{i} {}", 1.5e-3); }
}
"##;
        roundtrip(src);
    }

    #[test]
    fn classifies_core_kinds() {
        let toks: Vec<Tok> = lex("let m = 'a'; &'a str // hi")
            .into_iter()
            .filter(Tok::is_code)
            .collect();
        assert_eq!(toks[0].kind, TokKind::Ident);
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        let all = lex("let m = 'a'; &'a str // hi");
        assert!(all.iter().any(|t| t.kind == TokKind::LineComment));
    }

    #[test]
    fn survives_unterminated_forms() {
        roundtrip("let s = \"never closed");
        roundtrip("/* never closed");
        roundtrip("let r = r#\"never closed");
        roundtrip("let c = '");
        roundtrip("b'");
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\n  c");
        let c = toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks: Vec<Tok> = lex("0..10").into_iter().filter(Tok::is_code).collect();
        assert_eq!(toks[0].text, "0");
        assert_eq!(toks[1].text, ".");
        assert_eq!(toks[2].text, ".");
        assert_eq!(toks[3].text, "10");
    }
}
