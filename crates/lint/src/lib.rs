//! `gfd-lint`: workspace static analysis for determinism and hot-path
//! invariants.
//!
//! The repo's headline correctness claim — bit-identical rule output
//! across `SeqDis`, the barrier runtime, and the steal runtime at any
//! worker count — rests on invariants that ordinary compilation cannot
//! check: no hash-order iteration on output-affecting paths, no panics
//! inside worker bodies, no wall-clock reads in modelled cost accounting.
//! This crate enforces them as deny-by-default diagnostics over a
//! hand-rolled token stream (no crates.io access, so no `syn`):
//!
//! - [`lexer`] — a total, panic-free Rust lexer: every byte lands in
//!   exactly one token and concatenating token texts reproduces the
//!   source, so the walker can never desynchronise from the file.
//! - [`rules`] — the six shipped rule families (`nondeterminism`,
//!   `no-panic`, `unsafe-code`, `simulated-cost`, `perf`, `hygiene`).
//! - [`engine`] — per-file context, `gfd-lint: allow(…)` escape
//!   handling, and the workspace walk.
//!
//! Run it as `cargo run -p gfd-lint -- --deny`; suppress a finding with a
//! justified plain-comment escape on the offending line or the line above.
//! The static pass is cross-checked dynamically by the
//! `schedule_perturbation` suite in `crates/parallel`, which perturbs the
//! steal runtime's scheduling and asserts output equality with `SeqDis`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_source, lint_workspace, workspace_files, Diagnostic};
pub use rules::{all_rules, rule_names};
