//! The `gfd-lint` binary: lints every workspace `.rs` file.
//!
//! ```text
//! gfd-lint [PATHS…] [--deny [RULE]] [--allow RULE] [--list-rules] [--root DIR]
//! ```
//!
//! With no paths, the whole workspace (discovered by walking up from the
//! current directory to the `[workspace]` `Cargo.toml`) is linted. Every
//! rule denies by default; `--allow RULE` downgrades one rule to
//! advisory (printed, not fatal), and a bare `--deny` re-asserts
//! deny-everything (the CI invocation). Exits 1 if any denied rule
//! fires.

#![forbid(unsafe_code)]

use gfd_lint::rules::all_rules;
use gfd_lint::{lint_source, lint_workspace, rule_names, Diagnostic};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: gfd-lint [PATHS…] [--deny [RULE]] [--allow RULE] [--list-rules] [--root DIR]"
    );
    std::process::exit(2);
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let known = rule_names();
    let mut allow: BTreeSet<String> = BTreeSet::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut root_override: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in all_rules() {
                    println!("{:16} {}", rule.name(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--deny" => {
                // Optional rule operand; bare `--deny` = deny everything,
                // which is already the default (and clears prior allows).
                match args.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let rule = args.next().expect("peeked");
                        if !known.contains(&rule.as_str()) {
                            eprintln!("gfd-lint: unknown rule `{rule}`");
                            return ExitCode::from(2);
                        }
                        allow.remove(&rule);
                    }
                    _ => allow.clear(),
                }
            }
            "--allow" => {
                let Some(rule) = args.next() else { usage() };
                if !known.contains(&rule.as_str()) {
                    eprintln!("gfd-lint: unknown rule `{rule}`");
                    return ExitCode::from(2);
                }
                allow.insert(rule);
            }
            "--root" => {
                let Some(dir) = args.next() else { usage() };
                root_override = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => usage(),
            _ if arg.starts_with("--") => usage(),
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let root = match root_override {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };

    let diags: Vec<Diagnostic> = if paths.is_empty() {
        lint_workspace(&root)
    } else {
        let mut out = Vec::new();
        for path in &paths {
            // A directory operand lints every `.rs` file beneath it.
            let files: Vec<PathBuf> = if path.is_dir() {
                gfd_lint::workspace_files(path)
            } else {
                vec![path.clone()]
            };
            for file in &files {
                match std::fs::read_to_string(file) {
                    Ok(text) => {
                        let rel = file
                            .strip_prefix(&root)
                            .unwrap_or(file)
                            .to_string_lossy()
                            .replace('\\', "/");
                        out.extend(lint_source(&rel, &text));
                    }
                    Err(e) => {
                        eprintln!("gfd-lint: cannot read {}: {e}", file.display());
                        return ExitCode::from(2);
                    }
                }
            }
        }
        out
    };

    let mut denied = 0usize;
    for d in &diags {
        if allow.contains(d.rule) {
            println!("{}:{}: allow({}): {}", d.rel, d.line, d.rule, d.msg);
        } else {
            println!("{d}");
            denied += 1;
        }
    }
    if denied > 0 {
        eprintln!("gfd-lint: {denied} denied diagnostic(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
