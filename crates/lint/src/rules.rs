//! The shipped lint rules.
//!
//! Every rule walks the token stream of one file (via
//! [`FileContext`](crate::engine::FileContext)) and appends
//! [`Diagnostic`](crate::engine::Diagnostic)s. Rules are deny-by-default;
//! the engine applies inline escapes and CLI `--allow`/`--deny` levels on
//! top.
//!
//! Scoping: each rule names the workspace paths whose invariants it
//! protects. A rule also always applies to its own fixture directory
//! (`…/fixtures/<rule>/…`), which is how the self-test corpus proves each
//! rule fires — and to nothing in any *other* rule's fixtures, so good/bad
//! fixture files never cross-contaminate.

use crate::engine::{Diagnostic, FileContext};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// A single lint rule over one file's token stream.
pub trait Rule {
    /// Stable kebab-case rule name (CLI flag and escape-comment key).
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn describe(&self) -> &'static str;
    /// Appends raw diagnostics for `ctx` (escapes are applied later).
    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>);
}

/// All shipped rules, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Nondeterminism),
        Box::new(NoPanicHotPath),
        Box::new(UnsafeCode),
        Box::new(SimulatedCost),
        Box::new(PerfHotLoop),
        Box::new(Hygiene),
        Box::new(FaultBoundary),
    ]
}

/// Names of all shipped rules (escape validation, CLI parsing).
pub fn rule_names() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.name()).collect()
}

/// Whether `ctx` is in scope: its own fixture directory always, the listed
/// workspace path fragments otherwise (never another rule's fixtures).
fn in_scope(ctx: &FileContext<'_>, rule: &str, scopes: &[&str]) -> bool {
    if ctx.rel.contains("fixtures/") {
        return ctx.rel.contains(&format!("fixtures/{rule}/"));
    }
    scopes.iter().any(|s| ctx.rel.contains(s))
}

// ---------------------------------------------------------------------------
// nondeterminism
// ---------------------------------------------------------------------------

/// Iteration over hash-ordered collections in output-affecting crates.
///
/// `HashMap`/`HashSet` (and the workspace's `FxHashMap`/`FxHashSet`)
/// iterate in hasher order — a silent nondeterminism that the discovery
/// runtimes must exclude for bit-identical output. The rule tracks names
/// declared with a hash type in the same file (let bindings, fields,
/// params) and flags `.iter()`/`.keys()`/`.values()`/`.drain()`/
/// `.into_iter()` calls and `for … in` loops over them.
pub struct Nondeterminism;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
/// Tokens skipped when walking back from a hash-type name to its
/// declaration site (`x: &mut FxHashMap<…>`, `x: Arc<FxHashSet<…>>`).
const TYPE_WRAPPERS: &[&str] = &["Arc", "Rc", "Box", "Option", "mut", "dyn"];

/// Collects identifiers declared with a hash-map/set type in this file.
fn hash_typed_names<'a>(ctx: &FileContext<'a>) -> BTreeSet<&'a str> {
    let mut names = BTreeSet::new();
    for ci in 0..ctx.code_len() {
        if !HASH_TYPES.contains(&ctx.ct(ci)) {
            continue;
        }
        let mut k = ci;
        while k > 0 {
            k -= 1;
            let t = ctx.ctok(k);
            if t.text == "&"
                || t.text == "<"
                || t.kind == TokKind::Lifetime
                || TYPE_WRAPPERS.contains(&t.text)
            {
                continue;
            }
            // Declaration: `name: FxHashMap<…>` (field, param, or typed
            // let). A preceding second colon means a `::` path, not a
            // declaration.
            if t.text == ":" {
                if k > 0 && ctx.ct(k - 1) != ":" && ctx.ctok(k - 1).kind == TokKind::Ident {
                    names.insert(ctx.ct(k - 1));
                }
                break;
            }
            // Initialisation: `let name = FxHashMap::default()`.
            if t.text == "=" {
                if k > 0 && ctx.ctok(k - 1).kind == TokKind::Ident {
                    names.insert(ctx.ct(k - 1));
                }
                break;
            }
            break;
        }
    }
    names
}

impl Rule for Nondeterminism {
    fn name(&self) -> &'static str {
        "nondeterminism"
    }

    fn describe(&self) -> &'static str {
        "hash-order iteration (HashMap/HashSet/Fx* .iter()/.keys()/.values()/.drain()/for-in) in output-affecting crates"
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if !in_scope(
            ctx,
            self.name(),
            &[
                "crates/core/src/",
                "crates/parallel/src/",
                "crates/pattern/src/",
            ],
        ) {
            return;
        }
        let names = hash_typed_names(ctx);
        if names.is_empty() {
            return;
        }
        for ci in 0..ctx.code_len() {
            let t = ctx.ctok(ci);
            if ctx.is_test_line(t.line) {
                continue;
            }
            // `name.iter()` and friends (also matches `expr.field.iter()`
            // when `field` is a hash-typed name declared in this file).
            if t.kind == TokKind::Ident
                && names.contains(t.text)
                && ctx.ct(ci + 1) == "."
                && ITER_METHODS.contains(&ctx.ct(ci + 2))
                && ctx.ct(ci + 3) == "("
            {
                out.push(ctx.diag(
                    self.name(),
                    ctx.ctok(ci + 2).line,
                    format!(
                        "`{}.{}()` iterates in hash order — use a BTreeMap/sorted \
                         collection or justify why order cannot affect output",
                        t.text,
                        ctx.ct(ci + 2)
                    ),
                ));
            }
            // `for … in <expr mentioning a hash-typed name> {`.
            if t.kind == TokKind::Ident && t.text == "for" {
                self.check_for_loop(ctx, ci, &names, out);
            }
        }
    }
}

impl Nondeterminism {
    fn check_for_loop(
        &self,
        ctx: &FileContext<'_>,
        for_ci: usize,
        names: &BTreeSet<&str>,
        out: &mut Vec<Diagnostic>,
    ) {
        // Find the `in` at bracket depth 0, then scan the iterated
        // expression up to the loop body's `{`.
        let mut depth = 0i32;
        let mut j = for_ci + 1;
        let limit = (for_ci + 96).min(ctx.code_len());
        while j < limit {
            match ctx.ct(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth == 0 => return,
                "in" if depth == 0 && ctx.ctok(j).kind == TokKind::Ident => break,
                _ => {}
            }
            j += 1;
        }
        if j >= limit {
            return;
        }
        let mut k = j + 1;
        while k < limit {
            let t = ctx.ctok(k);
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return,
                _ => {
                    if t.kind == TokKind::Ident && names.contains(t.text) {
                        // A hash name followed by a method call is already
                        // covered by the method check (or is order-safe,
                        // e.g. `.contains_key`): only flag direct
                        // iteration of the collection value itself.
                        let next = ctx.ct(k + 1);
                        if next != "." && next != "[" {
                            out.push(ctx.diag(
                                self.name(),
                                ctx.ctok(for_ci).line,
                                format!(
                                    "`for … in` over hash-ordered `{}` — iteration order is \
                                     nondeterministic",
                                    t.text
                                ),
                            ));
                            return;
                        }
                        // `.into_iter()`-style chains are caught above;
                        // skip past the receiver.
                    }
                }
            }
            k += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// no-panic
// ---------------------------------------------------------------------------

/// Panics in steal/barrier worker bodies and core lattice/harvest code.
///
/// A panicking worker poisons a wave: the master blocks on a result that
/// never arrives. `unwrap()`/`expect()`/`panic!`-family macros and
/// indexing with a *computed* index (`v[f(i)]`) are flagged; escapes must
/// state the invariant that makes the site unreachable.
pub struct NoPanicHotPath;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for NoPanicHotPath {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn describe(&self) -> &'static str {
        "unwrap()/expect()/panic! and computed-index [] in parallel worker bodies and core lattice/harvest code"
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if !in_scope(
            ctx,
            self.name(),
            &[
                "crates/parallel/src/steal.rs",
                "crates/parallel/src/pardis.rs",
                "crates/parallel/src/cluster.rs",
                "crates/core/src/hspawn.rs",
                "crates/core/src/vspawn.rs",
            ],
        ) {
            return;
        }
        for ci in 0..ctx.code_len() {
            let t = ctx.ctok(ci);
            if ctx.is_test_line(t.line) {
                continue;
            }
            if t.text == "."
                && matches!(ctx.ct(ci + 1), "unwrap" | "expect")
                && ctx.ct(ci + 2) == "("
            {
                out.push(ctx.diag(
                    self.name(),
                    ctx.ctok(ci + 1).line,
                    format!(
                        "`.{}()` can panic in a worker body — plumb the error or justify \
                         the invariant that makes it unreachable",
                        ctx.ct(ci + 1)
                    ),
                ));
            }
            if t.kind == TokKind::Ident && PANIC_MACROS.contains(&t.text) && ctx.ct(ci + 1) == "!" {
                out.push(ctx.diag(
                    self.name(),
                    t.line,
                    format!("`{}!` aborts the worker — return an error instead", t.text),
                ));
            }
            if t.text == "[" && ci > 0 {
                let prev = ctx.ctok(ci - 1);
                let indexing = prev.kind == TokKind::Ident || prev.text == "]" || prev.text == ")";
                if indexing && self.index_contains_call(ctx, ci) {
                    out.push(
                        ctx.diag(
                            self.name(),
                            t.line,
                            "indexing with a computed index can panic out of bounds — bound it \
                         or use `.get()`"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
}

impl NoPanicHotPath {
    /// Whether the `[…]` starting at code index `open` contains a function
    /// or method call (`ident(`) — the "computed index on user data"
    /// heuristic.
    fn index_contains_call(&self, ctx: &FileContext<'_>, open: usize) -> bool {
        let mut depth = 0i32;
        let limit = (open + 64).min(ctx.code_len());
        for k in open..limit {
            match ctx.ct(k) {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                _ => {
                    if ctx.ctok(k).kind == TokKind::Ident && ctx.ct(k + 1) == "(" {
                        return true;
                    }
                }
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// unsafe-code
// ---------------------------------------------------------------------------

/// `#![forbid(unsafe_code)]` on every crate root; `// SAFETY:` on any
/// `unsafe` that a future `#![allow]` might re-admit.
pub struct UnsafeCode;

impl Rule for UnsafeCode {
    fn name(&self) -> &'static str {
        "unsafe-code"
    }

    fn describe(&self) -> &'static str {
        "crate roots must carry #![forbid(unsafe_code)]; any `unsafe` needs a // SAFETY: comment"
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.rel.contains("fixtures/") && !ctx.rel.contains("fixtures/unsafe-code/") {
            return;
        }
        let crate_root = ctx.rel.ends_with("src/lib.rs")
            || ctx.rel.ends_with("src/main.rs")
            || ctx.rel.contains("/src/bin/")
            || ctx.rel.contains("fixtures/unsafe-code/");
        if crate_root && !self.has_forbid(ctx) {
            out.push(ctx.diag(
                self.name(),
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
        for ci in 0..ctx.code_len() {
            let t = ctx.ctok(ci);
            if t.kind == TokKind::Ident && t.text == "unsafe" && !ctx.has_safety_comment(t.line) {
                out.push(ctx.diag(
                    self.name(),
                    t.line,
                    "`unsafe` without a `// SAFETY:` comment in the preceding lines".to_string(),
                ));
            }
        }
    }
}

impl UnsafeCode {
    fn has_forbid(&self, ctx: &FileContext<'_>) -> bool {
        const SEQ: &[&str] = &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
        (0..ctx.code_len().saturating_sub(SEQ.len())).any(|ci| {
            SEQ.iter()
                .enumerate()
                .all(|(k, want)| ctx.ct(ci + k) == *want)
        })
    }
}

// ---------------------------------------------------------------------------
// simulated-cost
// ---------------------------------------------------------------------------

/// Wall-clock reads must never leak into modelled cost accounting.
///
/// `ExecMode::Simulated` scalability curves (the paper's Fig. 5 shapes)
/// are reproducible only because unit costs are pure functions of the
/// input — rows touched, adjacency entries visited. The rule flags any
/// statement in the runtime files that mixes a time source
/// (`Instant`/`elapsed`/`as_nanos`/…) with a cost/work accumulator, plus
/// any use of `SystemTime` at all.
pub struct SimulatedCost;

const TIME_TOKENS: &[&str] = &[
    "Instant",
    "elapsed",
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
    "as_secs_f32",
    "as_secs_f64",
];

impl Rule for SimulatedCost {
    fn name(&self) -> &'static str {
        "simulated-cost"
    }

    fn describe(&self) -> &'static str {
        "no Instant/SystemTime flowing into modelled cost/work accounting in the runtime files"
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if !in_scope(
            ctx,
            self.name(),
            &[
                "crates/parallel/src/cluster.rs",
                "crates/parallel/src/steal.rs",
                "crates/parallel/src/parcover.rs",
                "crates/parallel/src/pardis.rs",
                "crates/core/src/seqdis.rs",
            ],
        ) {
            return;
        }
        // Statement-level scan: a statement that touches both a time
        // source and a cost/work identifier taints the modelled schedule.
        let mut stmt_start = 0usize;
        for ci in 0..ctx.code_len() {
            let t = ctx.ctok(ci);
            if t.kind == TokKind::Ident && t.text == "SystemTime" && !ctx.is_test_line(t.line) {
                out.push(
                    ctx.diag(
                        self.name(),
                        t.line,
                        "`SystemTime` has no place in the runtime — costs and schedules must be \
                     wall-clock-free"
                            .to_string(),
                    ),
                );
            }
            if matches!(t.text, ";" | "{" | "}") {
                self.check_stmt(ctx, stmt_start, ci, out);
                stmt_start = ci + 1;
            }
        }
        self.check_stmt(ctx, stmt_start, ctx.code_len(), out);
    }
}

impl SimulatedCost {
    fn check_stmt(
        &self,
        ctx: &FileContext<'_>,
        start: usize,
        end: usize,
        out: &mut Vec<Diagnostic>,
    ) {
        if start >= end {
            return;
        }
        let line = ctx.ctok(start).line;
        if ctx.is_test_line(line) {
            return;
        }
        let mut has_time = false;
        let mut cost_ident: Option<&str> = None;
        for ci in start..end {
            let t = ctx.ctok(ci);
            if t.kind != TokKind::Ident {
                continue;
            }
            if TIME_TOKENS.contains(&t.text) {
                has_time = true;
            }
            let lower = t.text.to_ascii_lowercase();
            // "worker" is not "work": strip it before the substring test so
            // `worker_results`-style names don't read as cost accounting.
            let depersonned = lower.replace("worker", "");
            if lower.contains("cost") || depersonned.contains("work") {
                cost_ident = Some(t.text);
            }
        }
        if has_time {
            if let Some(name) = cost_ident {
                out.push(ctx.diag(
                    self.name(),
                    line,
                    format!(
                        "statement mixes a wall-clock source with cost/work accounting \
                         (`{name}`) — modelled costs must be pure functions of the input"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// perf
// ---------------------------------------------------------------------------

/// Allocation-churn calls inside per-row/per-edge loops of the matcher
/// and harvest hot paths (`Arc::clone`, `.to_vec()`, `format!`), and
/// full-LHS re-accumulation inside lattice loops (`evaluate`/
/// `accumulate_lhs` per visited node re-ANDs the whole premise set; the
/// prefix-shared stack ANDs one literal against the cached parent
/// accumulator instead).
///
/// In the frozen-graph crate (`crates/graph/src/`) the rule additionally
/// flags nested `Vec<Vec<…>>` anywhere — construction and read paths
/// there are structure-of-arrays CSR by design (offset ranges into flat
/// arrays); a vec-of-vecs is a per-node allocation and a pointer chase per
/// access, exactly the layout the scale refactor removed.
pub struct PerfHotLoop;

impl Rule for PerfHotLoop {
    fn name(&self) -> &'static str {
        "perf"
    }

    fn describe(&self) -> &'static str {
        "Arc::clone/.to_vec()/format! in matcher/harvest loops; full-LHS re-accumulation in lattice loops; Vec<Vec< in frozen-graph paths; MatchTable::build in bound-validation paths"
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        // Three jurisdictions: the loop-allocation checks guard the matcher/
        // harvest/lattice hot paths; the nested-Vec layout check guards the
        // frozen graph's SoA representation; the table-construction check
        // guards the bound-validation paths. The perf fixtures exercise all
        // of them.
        let nested_scope =
            ctx.rel.contains("crates/graph/src/") || ctx.rel.contains("fixtures/perf/");
        let loop_scope = in_scope(
            ctx,
            self.name(),
            &[
                "crates/pattern/src/matcher.rs",
                "crates/core/src/vspawn.rs",
                "crates/core/src/hspawn.rs",
                "crates/core/src/bitmap.rs",
            ],
        );
        let bound_scope = in_scope(
            ctx,
            self.name(),
            &[
                "crates/core/src/bound.rs",
                "crates/incremental/src/monitor.rs",
            ],
        );
        if !nested_scope && !loop_scope && !bound_scope {
            return;
        }
        // Brace-frame tracking: a frame opened after for/while/loop is a
        // loop body; any enclosing loop frame puts us on a per-row path.
        // The `for` of an `impl Trait for Type` header is not a loop.
        let mut frames: Vec<bool> = Vec::new();
        let mut pending_loop = false;
        let mut impl_header = false;
        for ci in 0..ctx.code_len() {
            let t = ctx.ctok(ci);
            match t.text {
                "impl" if t.kind == TokKind::Ident => impl_header = true,
                "for" if t.kind == TokKind::Ident && impl_header => {}
                "for" | "while" | "loop" if t.kind == TokKind::Ident => pending_loop = true,
                ";" => {
                    pending_loop = false;
                    impl_header = false;
                }
                "{" => {
                    frames.push(pending_loop);
                    pending_loop = false;
                    impl_header = false;
                }
                "}" => {
                    frames.pop();
                }
                _ => {}
            }
            if nested_scope
                && t.text == "Vec"
                && t.kind == TokKind::Ident
                && ctx.ct(ci + 1) == "<"
                && ctx.ct(ci + 2) == "Vec"
                && !ctx.is_test_line(t.line)
            {
                out.push(
                    ctx.diag(
                        self.name(),
                        t.line,
                        "nested `Vec<Vec<…>>` in a frozen-graph path — use the flat \
                     structure-of-arrays CSR shape (offset ranges into one flat array) instead"
                            .to_string(),
                    ),
                );
            }
            if bound_scope
                && t.text == "MatchTable"
                && t.kind == TokKind::Ident
                && ctx.ct(ci + 1) == ":"
                && ctx.ct(ci + 2) == ":"
                && ctx.ct(ci + 3) == "build"
                && !ctx.is_test_line(t.line)
            {
                out.push(
                    ctx.diag(
                        self.name(),
                        t.line,
                        "full `MatchTable` construction in a bound-validation path — \
                     `BoundValidator` evaluates literals over the per-pivot match set \
                     directly; materialising a global table forfeits the k-hop locality win"
                            .to_string(),
                    ),
                );
            }
            if !loop_scope || !frames.iter().any(|&l| l) || ctx.is_test_line(t.line) {
                continue;
            }
            let flagged = if t.text == "format" && ctx.ct(ci + 1) == "!" {
                Some("`format!` allocates per iteration")
            } else if t.text == "Arc"
                && ctx.ct(ci + 1) == ":"
                && ctx.ct(ci + 2) == ":"
                && ctx.ct(ci + 3) == "clone"
            {
                Some("`Arc::clone` bumps a shared refcount per iteration")
            } else if t.text == "." && ctx.ct(ci + 1) == "to_vec" && ctx.ct(ci + 2) == "(" {
                Some("`.to_vec()` copies per iteration")
            } else if (t.text == "evaluate" || t.text == "accumulate_lhs")
                && t.kind == TokKind::Ident
                && ctx.ct(ci + 1) == "("
                && (ci == 0 || ctx.ct(ci - 1) != "fn")
            {
                Some(
                    "full-LHS re-accumulation per lattice node — the prefix stack \
                     (`stack_eval_child`) ANDs one literal against the cached parent accumulator",
                )
            } else {
                None
            };
            if let Some(why) = flagged {
                out.push(ctx.diag(
                    self.name(),
                    t.line,
                    format!("{why} — hoist it out of the loop or justify the escape"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// hygiene
// ---------------------------------------------------------------------------

/// Workspace hygiene: `TODO`/`FIXME` without an issue reference, and
/// blanket `#[allow(dead_code)]`/`#[allow(unused…)]` attributes without a
/// same-line justification comment. (Stale or unjustified `gfd-lint`
/// escapes are reported under this rule by the engine itself.)
pub struct Hygiene;

impl Rule for Hygiene {
    fn name(&self) -> &'static str {
        "hygiene"
    }

    fn describe(&self) -> &'static str {
        "TODO/FIXME without an issue reference; unjustified #[allow(dead_code/unused…)]; stale lint escapes"
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.rel.contains("fixtures/") && !ctx.rel.contains("fixtures/hygiene/") {
            return;
        }
        for t in ctx.toks {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            if (t.text.contains("TODO") || t.text.contains("FIXME")) && !has_issue_ref(t.text) {
                out.push(
                    ctx.diag(
                        self.name(),
                        t.line,
                        "TODO/FIXME without an issue reference (add `#<n>` or an ISSUE link, or \
                     resolve it)"
                            .to_string(),
                    ),
                );
            }
        }
        for ci in 0..ctx.code_len() {
            if ctx.ct(ci) != "#" || ctx.ct(ci + 1) != "[" || ctx.ct(ci + 2) != "allow" {
                continue;
            }
            let line = ctx.ctok(ci).line;
            let mut k = ci + 3;
            let limit = (ci + 24).min(ctx.code_len());
            let mut blanket: Option<&str> = None;
            while k < limit && ctx.ct(k) != "]" {
                let txt = ctx.ct(k);
                if txt == "dead_code" || txt.starts_with("unused") {
                    blanket = Some(ctx.ctok(k).text);
                }
                k += 1;
            }
            if let Some(what) = blanket {
                if !ctx.has_trailing_comment(line) {
                    out.push(ctx.diag(
                        self.name(),
                        line,
                        format!(
                            "blanket `#[allow({what})]` — delete it if stale, or add a \
                             same-line comment saying why it must stay"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// fault-boundary
// ---------------------------------------------------------------------------

/// Panic-recovery discipline in the parallel runtime.
///
/// Recovery from injected and genuine worker panics hinges on two
/// invariants: every `catch_unwind` site is a *deliberate* fault boundary
/// (documented with a `fault-boundary:` comment saying what failure it
/// absorbs and why state stays consistent), and channel results are never
/// `unwrap`ed/`expect`ed — a crashed peer closes its channel, and that
/// `RecvError` must turn into `WorkerLost` recovery, not a master panic.
/// `fault.rs` itself is exempt: it is the boundary module the rest of the
/// runtime delegates to.
pub struct FaultBoundary;

impl Rule for FaultBoundary {
    fn name(&self) -> &'static str {
        "fault-boundary"
    }

    fn describe(&self) -> &'static str {
        "catch_unwind without a `fault-boundary:` justification; unwrap()/expect() on channel recv results in the parallel runtime"
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if !in_scope(ctx, self.name(), &["crates/parallel/src/"]) || ctx.rel.ends_with("fault.rs") {
            return;
        }
        // Lines carrying a `fault-boundary` justification comment.
        let boundary_lines: BTreeSet<u32> = ctx
            .toks
            .iter()
            .filter(|t| {
                matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                    && t.text.contains("fault-boundary")
            })
            .map(|t| t.line)
            .collect();
        for ci in 0..ctx.code_len() {
            let t = ctx.ctok(ci);
            if t.kind != TokKind::Ident || ctx.is_test_line(t.line) {
                continue;
            }
            if t.text == "catch_unwind" {
                let justified =
                    (t.line.saturating_sub(3)..=t.line).any(|l| boundary_lines.contains(&l));
                if !justified {
                    out.push(
                        ctx.diag(
                            self.name(),
                            t.line,
                            "`catch_unwind` without a `fault-boundary:` comment — say what \
                         failure this boundary absorbs and why state stays consistent"
                                .to_string(),
                        ),
                    );
                }
            }
            if matches!(t.text, "recv" | "recv_timeout") && ctx.ct(ci + 1) == "(" {
                // `.unwrap()`/`.expect(` within a few tokens of the call
                // means the channel result is not error-handled.
                let limit = (ci + 10).min(ctx.code_len());
                for k in ci + 1..limit {
                    if ctx.ct(k) == "." && matches!(ctx.ct(k + 1), "unwrap" | "expect") {
                        out.push(ctx.diag(
                            self.name(),
                            t.line,
                            format!(
                                "`.{}()` on a channel result — a crashed peer closes its \
                                 channel; route the `RecvError` into `WorkerLost` recovery",
                                ctx.ct(k + 1)
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
}

/// Whether a TODO/FIXME comment carries an issue reference: `#<digits>`
/// or the word `ISSUE`.
fn has_issue_ref(text: &str) -> bool {
    if text.contains("ISSUE") || text.contains("issue") {
        return true;
    }
    let bytes = text.as_bytes();
    bytes
        .windows(2)
        .any(|w| w[0] == b'#' && w[1].is_ascii_digit())
}
