//! Property tests for the extended-literal solver: soundness of conflict
//! detection and entailment against brute-force model enumeration.
//!
//! The oracle builds a real one-node-per-variable graph for every candidate
//! assignment and evaluates literals through [`XLiteral::satisfied`] — the
//! production semantics — so the solver and the oracle cannot drift apart.

use gfd_extended::{entails, is_conflicting, CmpOp, Operand, Term, XLiteral};
use gfd_graph::{AttrId, Graph, GraphBuilder, NodeId, Value};
use proptest::prelude::*;

const VARS: usize = 3;
const ATTRS: u16 = 2;

/// The brute-force value domain: small integers plus two distinct strings.
fn domain(g_symbols: &[Value]) -> Vec<Value> {
    let mut d: Vec<Value> = (-2..=2).map(Value::Int).collect();
    d.extend_from_slice(g_symbols);
    d
}

fn term_strategy() -> impl Strategy<Value = Term> {
    (0..VARS, 0..ATTRS).prop_map(|(v, a)| Term::new(v, AttrId(a)))
}

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Builds literals over a small universe. String constants use marker
/// integers 100/101 resolved to interned symbols at evaluation time.
#[derive(Clone, Debug)]
enum ProtoRhs {
    Int(i64),
    Sym(u8),
    Term(Term, i64),
}

#[derive(Clone, Debug)]
struct ProtoLit {
    lhs: Term,
    op: CmpOp,
    rhs: ProtoRhs,
}

fn rhs_strategy() -> impl Strategy<Value = ProtoRhs> {
    prop_oneof![
        (-2i64..=2).prop_map(ProtoRhs::Int),
        (0u8..2).prop_map(ProtoRhs::Sym),
        (term_strategy(), -2i64..=2).prop_map(|(t, d)| ProtoRhs::Term(t, d)),
    ]
}

fn lit_strategy() -> impl Strategy<Value = ProtoLit> {
    (term_strategy(), op_strategy(), rhs_strategy())
        .prop_filter("no self-comparison", |(l, _, r)| match r {
            ProtoRhs::Term(t, _) => t != l,
            _ => true,
        })
        .prop_map(|(lhs, op, rhs)| ProtoLit { lhs, op, rhs })
}

/// The evaluation fixture: one node per variable, plus the two interned
/// string symbols used by `ProtoRhs::Sym`.
struct Fixture {
    syms: [Value; 2],
}

impl Fixture {
    fn new() -> (Graph, Fixture) {
        let mut b = GraphBuilder::new();
        for _ in 0..VARS {
            b.add_node("n");
        }
        let g = b.build();
        let s0 = Value::Str(g.interner().symbol("alpha"));
        let s1 = Value::Str(g.interner().symbol("beta"));
        (g, Fixture { syms: [s0, s1] })
    }

    fn resolve(&self, lits: &[ProtoLit]) -> Vec<XLiteral> {
        lits.iter()
            .map(|p| match p.rhs {
                ProtoRhs::Int(c) => XLiteral::cmp_const(p.lhs.var, p.lhs.attr, p.op, Value::Int(c)),
                ProtoRhs::Sym(i) => {
                    XLiteral::cmp_const(p.lhs.var, p.lhs.attr, p.op, self.syms[i as usize])
                }
                ProtoRhs::Term(t, d) => XLiteral::cmp_terms(p.lhs, p.op, t, d),
            })
            .collect()
    }
}

/// Terms mentioned by the literal set.
fn terms_of(lits: &[XLiteral]) -> Vec<Term> {
    let mut out = Vec::new();
    for l in lits {
        out.push(l.lhs);
        if let Operand::Term(t, _) = l.rhs {
            out.push(t);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Enumerates all assignments of `domain` values to `terms`, building the
/// graph attributes for each and invoking `check`; stops early when
/// `check` returns true. Returns whether any assignment passed.
fn any_model(terms: &[Term], dom: &[Value], check: impl Fn(&Graph, &[NodeId]) -> bool) -> bool {
    let m: Vec<NodeId> = (0..VARS).map(NodeId::from_index).collect();
    let mut idx = vec![0usize; terms.len()];
    loop {
        // Materialise this assignment as a fresh graph.
        let mut b = GraphBuilder::new();
        for _ in 0..VARS {
            b.add_node("n");
        }
        // Keep symbol ids aligned with the fixture's interner by interning
        // in the same order.
        let _ = b.interner().symbol("alpha");
        let _ = b.interner().symbol("beta");
        for (t, &i) in terms.iter().zip(&idx) {
            b.set_attr_by_id(m[t.var], t.attr, dom[i]);
        }
        let g = b.build();
        if check(&g, &m) {
            return true;
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == idx.len() {
                return false;
            }
            idx[k] += 1;
            if idx[k] < dom.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness of conflict detection: a reported conflict means no
    /// assignment over the full value domain satisfies every literal.
    #[test]
    fn conflict_implies_no_model(protos in prop::collection::vec(lit_strategy(), 1..5)) {
        let (_g, fx) = Fixture::new();
        let lits = fx.resolve(&protos);
        let terms = terms_of(&lits);
        prop_assume!(terms.len() <= 4);
        if is_conflicting(&lits) {
            let dom = domain(&fx.syms);
            let found = any_model(&terms, &dom, |g, m| {
                lits.iter().all(|l| l.satisfied(m, g))
            });
            prop_assert!(!found, "solver reported conflict but a model exists: {lits:?}");
        }
    }

    /// Soundness of entailment: `X ⊨ l` means every model of `X` (over the
    /// brute-force domain) satisfies `l`.
    #[test]
    fn entailment_preserved_by_models(
        protos in prop::collection::vec(lit_strategy(), 1..4),
        goal in lit_strategy(),
    ) {
        let (_g, fx) = Fixture::new();
        let lits = fx.resolve(&protos);
        let l = fx.resolve(std::slice::from_ref(&goal)).pop().unwrap();
        let mut all = lits.clone();
        all.push(l);
        let terms = terms_of(&all);
        prop_assume!(terms.len() <= 4);
        if entails(&lits, &l) {
            let dom = domain(&fx.syms);
            let counterexample = any_model(&terms, &dom, |g, m| {
                lits.iter().all(|x| x.satisfied(m, g)) && !l.satisfied(m, g)
            });
            prop_assert!(
                !counterexample,
                "entails({lits:?}, {l:?}) but a countermodel exists"
            );
        }
    }

    /// Literal normalisation is semantics-preserving: the canonical
    /// orientation of a term–term literal evaluates identically to the
    /// original on every assignment.
    #[test]
    fn orientation_preserves_semantics(
        l in term_strategy(),
        op in op_strategy(),
        r in term_strategy(),
        d in -2i64..=2,
    ) {
        prop_assume!(l != r);
        let a = XLiteral::cmp_terms(l, op, r, d);
        let b = XLiteral::cmp_terms(r, op.swap(), l, -d);
        prop_assert_eq!(a, b);
        let (_g, fx) = Fixture::new();
        let dom = domain(&fx.syms);
        let terms = [l, r];
        // Every assignment gives equal verdicts (trivially true since a == b,
        // but also checks satisfied() is orientation-independent by value).
        let disagrees = any_model(&terms, &dom, |g, m| {
            a.satisfied(m, g) != b.satisfied(m, g)
        });
        prop_assert!(!disagrees);
    }
}
