//! Property test: every syntactically valid extended rule survives a
//! render → parse round-trip exactly (patterns, pivots, operators,
//! offsets, constants of both types).

use gfd_extended::{parse_xrules, render_xrules, CmpOp, Term, XGfd, XLiteral, XRhs};
use gfd_graph::{Interner, Value};
use gfd_pattern::{PEdge, PLabel, Pattern};
use proptest::prelude::*;

const NODES: usize = 3;
const ATTRS: u16 = 3;
const LABELS: u32 = 3;

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

#[derive(Clone, Debug)]
enum ProtoRhs {
    Int(i64),
    Sym(u8),
    Term(usize, u16, i64),
}

#[derive(Clone, Debug)]
struct ProtoLit {
    var: usize,
    attr: u16,
    op: CmpOp,
    rhs: ProtoRhs,
}

fn lit_strategy() -> impl Strategy<Value = ProtoLit> {
    (
        0..NODES,
        0..ATTRS,
        op_strategy(),
        prop_oneof![
            (-99i64..=99).prop_map(ProtoRhs::Int),
            (0u8..3).prop_map(ProtoRhs::Sym),
            (0..NODES, 0..ATTRS, -9i64..=9).prop_map(|(v, a, d)| ProtoRhs::Term(v, a, d)),
        ],
    )
        .prop_filter("no self-comparison", |(v, a, _, rhs)| match rhs {
            ProtoRhs::Term(v2, a2, _) => (v, a) != (v2, a2),
            _ => true,
        })
        .prop_map(|(var, attr, op, rhs)| ProtoLit { var, attr, op, rhs })
}

/// Builds the shared interner with every name the protos may reference.
fn interner() -> Interner {
    let i = Interner::new();
    for l in 0..LABELS {
        i.label(&format!("label{l}"));
    }
    for a in 0..ATTRS {
        i.attr(&format!("attr{a}"));
    }
    for sym in 0..3u8 {
        i.symbol(&format!("sym {sym}"));
    }
    i
}

fn resolve(p: &ProtoLit, i: &Interner) -> XLiteral {
    let attr = |a: u16| i.lookup_attr(&format!("attr{a}")).unwrap();
    match p.rhs {
        ProtoRhs::Int(c) => XLiteral::cmp_const(p.var, attr(p.attr), p.op, Value::Int(c)),
        ProtoRhs::Sym(sx) => XLiteral::cmp_const(
            p.var,
            attr(p.attr),
            p.op,
            Value::Str(i.lookup_symbol(&format!("sym {sx}")).unwrap()),
        ),
        ProtoRhs::Term(v, a, d) => XLiteral::cmp_terms(
            Term::new(p.var, attr(p.attr)),
            p.op,
            Term::new(v, attr(a)),
            d,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_rules_roundtrip(
        node_labels in prop::collection::vec(0u32..LABELS, NODES..=NODES),
        pivot in 0..NODES,
        edges in prop::collection::vec(
            (0..NODES, 0..NODES, 0u32..LABELS), 1..4),
        lhs in prop::collection::vec(lit_strategy(), 0..3),
        rhs in prop::option::of(lit_strategy()),
    ) {
        let i = interner();
        let labels: Vec<PLabel> = node_labels
            .iter()
            .map(|&l| PLabel::Is(i.lookup_label(&format!("label{l}")).unwrap()))
            .collect();
        let pedges: Vec<PEdge> = edges
            .iter()
            .map(|&(s, d, l)| PEdge {
                src: s,
                dst: d,
                label: PLabel::Is(i.lookup_label(&format!("label{l}")).unwrap()),
            })
            .collect();
        let pattern = Pattern::new(labels, pedges, pivot);
        let lhs: Vec<XLiteral> = lhs.iter().map(|p| resolve(p, &i)).collect();
        let rhs = match &rhs {
            Some(p) => XRhs::Lit(resolve(p, &i)),
            None => XRhs::False,
        };
        let rule = XGfd::new(pattern, lhs, rhs);

        let text = render_xrules(std::slice::from_ref(&rule), &i);
        let parsed = parse_xrules(&text, &i)
            .unwrap_or_else(|e| panic!("parse failed for:\n{text}\n{e}"));
        prop_assert_eq!(parsed, vec![rule], "text was:\n{}", text);
    }
}
