//! Constraint reasoning over extended literals.
//!
//! The fixed-parameter-tractable reasoning of §3 rests on deciding whether
//! a literal set is *conflicting* and whether it *entails* a literal. For
//! base GFDs equality transitivity suffices (`gfd_logic::closure`); with
//! built-in predicates the conjunction `X` mixes
//!
//! * type-agnostic equalities `x.A = y.B` (union–find),
//! * integer order and arithmetic `x.A ⊙ y.B + d`, `x.A ⊙ c` (a
//!   difference-bound constraint graph, checked by shortest paths), and
//! * disequalities (checked against forced values).
//!
//! [`is_conflicting`] is **sound**: when it reports a conflict the set has
//! no model over present attribute values. It is complete for
//! equality + order + arithmetic conjunctions (negative-cycle detection is
//! exact for difference constraints over the integers); the one source of
//! incompleteness is disequality *chains* that only conflict by counting a
//! finite domain (e.g. `0 ≤ t ≤ 1 ∧ t ≠ 0 ∧ t ≠ 1`), which no
//! case-split-free procedure detects. Discovery and cover computation only
//! rely on the sound direction: a missed conflict keeps a rule that a
//! smarter prover could have pruned — never the reverse.
//!
//! [`entails`] decides `X ⊨ l` by refutation (`X ∧ ¬l` conflicting),
//! guarded by attribute presence: a literal can only be entailed when every
//! term it mentions is forced present by `X` (§2.2's schemaless semantics —
//! satisfaction of `Y` requires the attribute to exist).

use gfd_graph::{FxHashMap, SymbolId, Value};

use crate::xliteral::{CmpOp, Operand, Term, XLiteral};

/// Infinity sentinel for shortest-path weights.
const INF: i128 = i128::MAX / 4;

/// The analysed form of a literal conjunction.
#[derive(Debug)]
pub struct Analysis {
    /// Whether the conjunction is unsatisfiable (sound; see module docs).
    pub conflicting: bool,
    terms: Vec<Term>,
    /// Term → index into `terms`.
    term_index: FxHashMap<Term, usize>,
    /// Union–find parent vector over term indexes.
    parent: Vec<usize>,
    /// Per-root string binding.
    str_binding: FxHashMap<usize, SymbolId>,
    /// Per-root integer forcing: some literal of the conjunction is only
    /// satisfiable when the class holds an integer value.
    class_wants_int: FxHashMap<usize, bool>,
    /// Shortest-path matrix over DBM nodes (index 0 = the zero node `Z`,
    /// node `i + 1` = class root of `terms[i]`); empty when conflicting
    /// was decided before the numeric phase.
    dist: Vec<Vec<i128>>,
    /// DBM node of each term's class root (0 = unused).
    dbm_node: Vec<usize>,
}

impl Analysis {
    /// Analyses a conjunction of extended literals.
    pub fn of(lits: &[XLiteral]) -> Analysis {
        let mut terms: Vec<Term> = Vec::new();
        let mut index: FxHashMap<Term, usize> = FxHashMap::default();
        let term_id = |t: Term, terms: &mut Vec<Term>, index: &mut FxHashMap<Term, usize>| {
            *index.entry(t).or_insert_with(|| {
                terms.push(t);
                terms.len() - 1
            })
        };

        // Classified constraints (term indexes).
        let mut unions: Vec<(usize, usize)> = Vec::new();
        let mut str_eq: Vec<(usize, SymbolId)> = Vec::new();
        let mut str_ne: Vec<(usize, SymbolId)> = Vec::new();
        // `(a, b, w)`: val(b) − val(a) ≤ w.
        let mut edges: Vec<(usize, usize, i128)> = Vec::new();
        let mut int_ne: Vec<(usize, i128)> = Vec::new();
        let mut term_ne: Vec<(usize, usize, i128)> = Vec::new();
        let mut wants_int: Vec<bool> = Vec::new();
        let mut falsified = false;

        const Z: usize = usize::MAX; // stands for the zero "constant" node

        // Emits `val(b) − val(a) ≤ w` where `Z` encodes the constant 0.
        let le = |a: usize, b: usize, w: i128, edges: &mut Vec<(usize, usize, i128)>| {
            edges.push((a, b, w));
        };

        for lit in lits {
            let t = term_id(lit.lhs, &mut terms, &mut index);
            wants_int.resize(terms.len(), false);
            match lit.rhs {
                Operand::Const(Value::Str(s)) => match lit.op {
                    CmpOp::Eq => str_eq.push((t, s)),
                    CmpOp::Ne => str_ne.push((t, s)),
                    // Order against a string constant is never satisfied.
                    _ => falsified = true,
                },
                Operand::Const(Value::Int(c)) => {
                    let c = c as i128;
                    match lit.op {
                        CmpOp::Eq => {
                            le(Z, t, c, &mut edges);
                            le(t, Z, -c, &mut edges);
                            wants_int[t] = true;
                        }
                        // `t ≠ c` is satisfied by any string, so it does
                        // not force an integer type.
                        CmpOp::Ne => int_ne.push((t, c)),
                        CmpOp::Le => {
                            le(Z, t, c, &mut edges);
                            wants_int[t] = true;
                        }
                        CmpOp::Lt => {
                            le(Z, t, c - 1, &mut edges);
                            wants_int[t] = true;
                        }
                        CmpOp::Ge => {
                            le(t, Z, -c, &mut edges);
                            wants_int[t] = true;
                        }
                        CmpOp::Gt => {
                            le(t, Z, -(c + 1), &mut edges);
                            wants_int[t] = true;
                        }
                    }
                }
                Operand::Term(rt, d) => {
                    let u = term_id(rt, &mut terms, &mut index);
                    wants_int.resize(terms.len(), false);
                    let d = d as i128;
                    match (lit.op, d) {
                        (CmpOp::Eq, 0) => unions.push((t, u)),
                        (CmpOp::Ne, 0) => term_ne.push((t, u, 0)),
                        (CmpOp::Eq, _) => {
                            // t = u + d  ⟺  t − u ≤ d ∧ u − t ≤ −d.
                            le(u, t, d, &mut edges);
                            le(t, u, -d, &mut edges);
                            wants_int[t] = true;
                            wants_int[u] = true;
                        }
                        (CmpOp::Ne, _) => {
                            // A non-zero offset is only satisfied by two
                            // integers, so the literal forces both types.
                            term_ne.push((t, u, d));
                            wants_int[t] = true;
                            wants_int[u] = true;
                        }
                        (CmpOp::Le, _) => {
                            le(u, t, d, &mut edges);
                            wants_int[t] = true;
                            wants_int[u] = true;
                        }
                        (CmpOp::Lt, _) => {
                            le(u, t, d - 1, &mut edges);
                            wants_int[t] = true;
                            wants_int[u] = true;
                        }
                        (CmpOp::Ge, _) => {
                            le(t, u, -d, &mut edges);
                            wants_int[t] = true;
                            wants_int[u] = true;
                        }
                        (CmpOp::Gt, _) => {
                            le(t, u, -(d + 1), &mut edges);
                            wants_int[t] = true;
                            wants_int[u] = true;
                        }
                    }
                }
            }
        }

        let n = terms.len();
        let mut analysis = Analysis {
            conflicting: falsified,
            terms,
            term_index: index,
            parent: (0..n).collect(),
            str_binding: FxHashMap::default(),
            class_wants_int: FxHashMap::default(),
            dist: Vec::new(),
            dbm_node: vec![0; n],
        };
        if analysis.conflicting {
            return analysis;
        }

        // Phase 1: union type-agnostic equalities.
        for (a, b) in unions {
            analysis.union(a, b);
        }

        // Phase 2: string bindings and their conflicts.
        for (t, &wants) in wants_int.iter().enumerate().take(n) {
            let r = analysis.find(t);
            *analysis.class_wants_int.entry(r).or_insert(false) |= wants;
        }
        let class_wants_int = analysis.class_wants_int.clone();
        for (t, s) in str_eq {
            let r = analysis.find(t);
            match analysis.str_binding.get(&r) {
                Some(&prev) if prev != s => {
                    analysis.conflicting = true;
                    return analysis;
                }
                _ => {
                    analysis.str_binding.insert(r, s);
                }
            }
        }
        // A class cannot be both a string and an integer.
        if analysis
            .str_binding
            .keys()
            .any(|r| class_wants_int.get(r).copied().unwrap_or(false))
        {
            analysis.conflicting = true;
            return analysis;
        }
        for (t, s) in &str_ne {
            let r = analysis.find(*t);
            if analysis.str_binding.get(&r) == Some(s) {
                analysis.conflicting = true;
                return analysis;
            }
        }
        // `t ≠ t'` with both terms in one equality class can never hold.
        for (a, b, d) in &term_ne {
            if *d == 0 && analysis.find(*a) == analysis.find(*b) {
                analysis.conflicting = true;
                return analysis;
            }
        }
        // Equal string bindings on both sides of a `≠`.
        for (a, b, d) in &term_ne {
            if *d == 0 {
                let (ra, rb) = (analysis.find(*a), analysis.find(*b));
                if let (Some(sa), Some(sb)) =
                    (analysis.str_binding.get(&ra), analysis.str_binding.get(&rb))
                {
                    if sa == sb {
                        analysis.conflicting = true;
                        return analysis;
                    }
                }
            }
        }

        // Phase 3: difference-bound reasoning over class representatives.
        // Node 0 is Z; every term's class gets a node (cheap: n is the
        // number of distinct (var, attr) terms of a small pattern).
        let mut node_of_root: FxHashMap<usize, usize> = FxHashMap::default();
        let mut m = 1usize;
        for t in 0..n {
            let r = analysis.find(t);
            let node = *node_of_root.entry(r).or_insert_with(|| {
                let id = m;
                m += 1;
                id
            });
            analysis.dbm_node[t] = node;
        }
        let mut dist = vec![vec![INF; m]; m];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0;
        }
        let node = |t: usize, analysis: &Analysis| -> usize {
            if t == Z {
                0
            } else {
                analysis.dbm_node[t]
            }
        };
        for (a, b, w) in &edges {
            let (na, nb) = (node(*a, &analysis), node(*b, &analysis));
            // val(b) − val(a) ≤ w: edge a → b with weight w.
            if *w < dist[na][nb] {
                dist[na][nb] = *w;
            }
        }
        // Floyd–Warshall (m ≤ #terms + 1, tiny for k-bounded patterns).
        for k in 0..m {
            for i in 0..m {
                if dist[i][k] == INF {
                    continue;
                }
                for j in 0..m {
                    if dist[k][j] == INF {
                        continue;
                    }
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
        if (0..m).any(|i| dist[i][i] < 0) {
            analysis.conflicting = true;
            return analysis;
        }

        // Phase 4: disequalities against forced values.
        for (t, c) in &int_ne {
            let u = node(*t, &analysis);
            // Conflict only when the class is integer-forced *and* pinned
            // exactly to c (otherwise a different integer or a string
            // satisfies the ≠).
            let r = analysis.find(*t);
            let forced_int = class_wants_int.get(&r).copied().unwrap_or(false);
            if forced_int && dist[0][u] == *c && dist[u][0] == -*c {
                analysis.conflicting = true;
                return analysis;
            }
        }
        for (a, b, d) in &term_ne {
            let (na, nb) = (node(*a, &analysis), node(*b, &analysis));
            if na == nb {
                continue; // d == 0 handled above; d ≠ 0 can't pin a − a = d ≠ 0 without a cycle
            }
            // val(a) − val(b) forced exactly d ⇒ a = b + d everywhere.
            if dist[nb][na] == *d && dist[na][nb] == -*d {
                // The pin only matters if both classes are integer-typed;
                // DBM paths between distinct nodes only exist through
                // int-forcing edges, so a finite two-sided bound implies it.
                analysis.conflicting = true;
                return analysis;
            }
        }

        analysis.dist = dist;
        analysis
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Non-compressing find for immutable queries.
    fn find_ref(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    /// Whether the conjunction forces `t` to hold an integer value in
    /// every model: `t`'s equality class participates in an order
    /// comparison, a non-zero arithmetic offset, or an integer-constant
    /// equality. Terms not mentioned by the conjunction are not forced.
    pub fn int_forced(&self, t: Term) -> bool {
        match self.term_index.get(&t) {
            Some(&i) => {
                let r = self.find_ref(i);
                self.class_wants_int.get(&r).copied().unwrap_or(false)
            }
            None => false,
        }
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }

    /// The terms of the analysed conjunction.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }
}

/// Whether the conjunction `lits` has no model (sound; see module docs).
pub fn is_conflicting(lits: &[XLiteral]) -> bool {
    Analysis::of(lits).conflicting
}

/// Whether the conjunction `lits` has a model, as far as the (sound)
/// conflict check can tell.
pub fn is_satisfiable_set(lits: &[XLiteral]) -> bool {
    !is_conflicting(lits)
}

/// Terms mentioned by a literal slice.
fn term_set(lits: &[XLiteral]) -> Vec<Term> {
    let mut out = Vec::new();
    for l in lits {
        out.push(l.lhs);
        if let Operand::Term(t, _) = l.rhs {
            out.push(t);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether `X ⊨ l`: every match satisfying all of `x` also satisfies `l`.
///
/// Sound but not complete (inherits [`is_conflicting`]'s precision). Two
/// guards keep refutation (`X ∧ ¬l` conflicting ⇒ `X ⊨ l`) honest under
/// the schemaless, dynamically-typed semantics:
///
/// * **presence** — `l`'s terms must appear in `x`: an attribute absent
///   from `X` can be missing on a match, and a literal over a missing
///   attribute is never satisfied (§2.2);
/// * **typing** — when `l` is only satisfiable on integers (an order
///   comparison, or a non-zero arithmetic offset), `X` must force its
///   terms to be integers. On a string value both `l` and `¬l` fail, so
///   they are not complementary and refutation alone would over-claim.
pub fn entails(x: &[XLiteral], l: &XLiteral) -> bool {
    let ax = Analysis::of(x);
    if ax.conflicting {
        return true; // vacuous: no match satisfies X
    }
    // Presence guard.
    let xt = term_set(x);
    let mut lterms = vec![l.lhs];
    if let Operand::Term(t, _) = l.rhs {
        lterms.push(t);
    }
    if !lterms.iter().all(|t| xt.binary_search(t).is_ok()) {
        return false;
    }
    // Typing guard (see above).
    let needs_int = l.op.is_order() || matches!(l.rhs, Operand::Term(_, d) if d != 0);
    if needs_int && !lterms.iter().all(|&t| ax.int_forced(t)) {
        return false;
    }
    // A literal that can never be satisfied is not entailed by a
    // satisfiable X.
    if is_conflicting(std::slice::from_ref(l)) {
        return false;
    }
    let mut refut: Vec<XLiteral> = x.to_vec();
    refut.push(l.negate());
    is_conflicting(&refut)
}

/// Whether `X ⊨ l` for every `l` in `ls`.
pub fn entails_all(x: &[XLiteral], ls: &[XLiteral]) -> bool {
    ls.iter().all(|l| entails(x, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{AttrId, Interner};

    fn t(var: usize, attr: u16) -> Term {
        Term::new(var, AttrId(attr))
    }

    fn int(c: i64) -> Value {
        Value::Int(c)
    }

    #[test]
    fn order_chain_conflict() {
        // a < b, b < c, c < a is a negative cycle.
        let x = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Lt, t(1, 0), 0),
            XLiteral::cmp_terms(t(1, 0), CmpOp::Lt, t(2, 0), 0),
            XLiteral::cmp_terms(t(2, 0), CmpOp::Lt, t(0, 0), 0),
        ];
        assert!(is_conflicting(&x));
        // Dropping one edge is satisfiable.
        assert!(is_satisfiable_set(&x[..2]));
    }

    #[test]
    fn integer_tightening() {
        // a < b ∧ b < a + 2 forces b = a + 1 over the integers: satisfiable,
        // but adding b ≠ a + 1 conflicts.
        let mut x = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Lt, t(1, 0), 0),
            XLiteral::cmp_terms(t(1, 0), CmpOp::Lt, t(0, 0), 2),
        ];
        assert!(is_satisfiable_set(&x));
        x.push(XLiteral::cmp_terms(t(1, 0), CmpOp::Ne, t(0, 0), 1));
        assert!(is_conflicting(&x));
    }

    #[test]
    fn constant_window_conflicts() {
        let x = vec![
            XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, int(10)),
            XLiteral::cmp_const(0, AttrId(0), CmpOp::Lt, int(10)),
        ];
        assert!(is_conflicting(&x));
        let y = vec![
            XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, int(10)),
            XLiteral::cmp_const(0, AttrId(0), CmpOp::Le, int(10)),
            XLiteral::cmp_const(0, AttrId(0), CmpOp::Ne, int(10)),
        ];
        assert!(is_conflicting(&y));
    }

    #[test]
    fn string_conflicts() {
        let i = Interner::new();
        let (s1, s2) = (i.symbol("a"), i.symbol("b"));
        let eq1 = XLiteral::cmp_const(0, AttrId(0), CmpOp::Eq, Value::Str(s1));
        let eq2 = XLiteral::cmp_const(0, AttrId(0), CmpOp::Eq, Value::Str(s2));
        assert!(is_conflicting(&[eq1, eq2]));
        let ne1 = XLiteral::cmp_const(0, AttrId(0), CmpOp::Ne, Value::Str(s1));
        assert!(is_conflicting(&[eq1, ne1]));
        assert!(is_satisfiable_set(&[eq1]));
        // String + integer-forcing constraint on one term.
        let ord = XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, int(3));
        assert!(is_conflicting(&[eq1, ord]));
        // Order against a string constant alone is unsatisfiable.
        let sord = XLiteral::cmp_const(0, AttrId(0), CmpOp::Lt, Value::Str(s1));
        assert!(is_conflicting(&[sord]));
    }

    #[test]
    fn equality_propagates_through_classes() {
        let i = Interner::new();
        let s = i.symbol("x");
        // a = b, b = c, a = "x", c ≠ "x" → conflict.
        let x = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Eq, t(1, 0), 0),
            XLiteral::cmp_terms(t(1, 0), CmpOp::Eq, t(2, 0), 0),
            XLiteral::cmp_const(0, AttrId(0), CmpOp::Eq, Value::Str(s)),
            XLiteral::cmp_const(2, AttrId(0), CmpOp::Ne, Value::Str(s)),
        ];
        assert!(is_conflicting(&x));
        // a = b ∧ a ≠ b → conflict.
        let y = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Eq, t(1, 0), 0),
            XLiteral::cmp_terms(t(0, 0), CmpOp::Ne, t(1, 0), 0),
        ];
        assert!(is_conflicting(&y));
    }

    #[test]
    fn arithmetic_offsets_chain() {
        // a = b + 5 ∧ b = c + 5 ∧ a ≤ c + 9 → conflict (a = c + 10).
        let x = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Eq, t(1, 0), 5),
            XLiteral::cmp_terms(t(1, 0), CmpOp::Eq, t(2, 0), 5),
            XLiteral::cmp_terms(t(0, 0), CmpOp::Le, t(2, 0), 9),
        ];
        assert!(is_conflicting(&x));
        let ok = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Eq, t(1, 0), 5),
            XLiteral::cmp_terms(t(1, 0), CmpOp::Eq, t(2, 0), 5),
            XLiteral::cmp_terms(t(0, 0), CmpOp::Le, t(2, 0), 10),
        ];
        assert!(is_satisfiable_set(&ok));
    }

    #[test]
    fn int_ne_needs_int_forcing() {
        // t ≠ 5 alone: satisfiable (a string or another int works), even
        // with t pinned as a *string*.
        let i = Interner::new();
        let s = i.symbol("a");
        let ne = XLiteral::cmp_const(0, AttrId(0), CmpOp::Ne, int(5));
        let eqs = XLiteral::cmp_const(0, AttrId(0), CmpOp::Eq, Value::Str(s));
        assert!(is_satisfiable_set(&[ne, eqs]));
        // Pinned to exactly 5 as an integer → conflict.
        let pin = XLiteral::cmp_const(0, AttrId(0), CmpOp::Eq, int(5));
        assert!(is_conflicting(&[ne, pin]));
    }

    #[test]
    fn entailment_basics() {
        let ge18 = XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, int(18));
        let ge10 = XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, int(10));
        let ne5 = XLiteral::cmp_const(0, AttrId(0), CmpOp::Ne, int(5));
        assert!(entails(&[ge18], &ge10));
        assert!(!entails(&[ge10], &ge18));
        assert!(entails(&[ge18], &ne5));
        // Presence guard: X says nothing about x1.A0.
        let other = XLiteral::cmp_const(1, AttrId(0), CmpOp::Ne, int(5));
        assert!(!entails(&[ge18], &other));
        // Unsatisfiable X entails everything.
        let lt10 = XLiteral::cmp_const(0, AttrId(0), CmpOp::Lt, int(10));
        assert!(entails(&[ge18, lt10], &other));
    }

    #[test]
    fn entailment_transitive_order() {
        // a ≤ b ∧ b ≤ c ⊨ a ≤ c; and with offsets.
        let x = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Le, t(1, 0), 0),
            XLiteral::cmp_terms(t(1, 0), CmpOp::Le, t(2, 0), 0),
        ];
        assert!(entails(
            &x,
            &XLiteral::cmp_terms(t(0, 0), CmpOp::Le, t(2, 0), 0)
        ));
        assert!(!entails(
            &x,
            &XLiteral::cmp_terms(t(0, 0), CmpOp::Lt, t(2, 0), 0)
        ));
        let gap = vec![
            XLiteral::cmp_terms(t(1, 0), CmpOp::Ge, t(0, 0), 18),
            XLiteral::cmp_terms(t(2, 0), CmpOp::Ge, t(1, 0), 18),
        ];
        assert!(entails(
            &gap,
            &XLiteral::cmp_terms(t(2, 0), CmpOp::Ge, t(0, 0), 36)
        ));
        assert!(entails(
            &gap,
            &XLiteral::cmp_terms(t(2, 0), CmpOp::Gt, t(0, 0), 0)
        ));
    }

    #[test]
    fn unsatisfiable_literal_never_entailed() {
        let i = Interner::new();
        let s = i.symbol("a");
        let x = vec![XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, int(0))];
        // Order against a string constant over the same term.
        let bad = XLiteral::cmp_const(0, AttrId(0), CmpOp::Lt, Value::Str(s));
        assert!(!entails(&x, &bad));
    }

    #[test]
    fn base_fragment_matches_equality_reasoning() {
        let i = Interner::new();
        let s = i.symbol("v");
        // a = b ∧ a = "v" ⊨ b = "v" (transitivity of equality, §3).
        let x = vec![
            XLiteral::cmp_terms(t(0, 0), CmpOp::Eq, t(1, 0), 0),
            XLiteral::cmp_const(0, AttrId(0), CmpOp::Eq, Value::Str(s)),
        ];
        assert!(entails(
            &x,
            &XLiteral::cmp_const(1, AttrId(0), CmpOp::Eq, Value::Str(s))
        ));
    }

    #[test]
    fn empty_set_is_satisfiable_and_entails_nothing() {
        assert!(is_satisfiable_set(&[]));
        let l = XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, int(0));
        assert!(!entails(&[], &l));
    }
}
