//! Textual (de)serialisation of extended GFDs.
//!
//! The same one-rule-per-line shape as `gfd_logic::text` (whose pattern
//! parser this module reuses), with the literal grammar widened to the
//! six comparison operators and arithmetic offsets:
//!
//! ```text
//! Q[x0:person*, x1:person; x0-parent->x1](∅ -> x1.birth>=x0.birth+12)
//! Q[x0:film*](x0.year<1920 -> x0.format="silent")
//! Q[x0:person*](x0.death<x0.birth -> false)
//! ```
//!
//! * operators: `=`, `!=`, `<`, `<=`, `>`, `>=` (also accepted: `≠ ≤ ≥`);
//! * right operands: `"string"`, integer, or `x<j>.<attr>[±d]`;
//! * attribute names must not contain comparison symbols, `+`, or `-`
//!   (the base format shares the first restriction).

use gfd_graph::{Interner, Value};
use gfd_logic::text::{parse_pattern_body, parse_var, split_rule};
use gfd_logic::RuleParseError;

use crate::xgfd::{XGfd, XRhs};
use crate::xliteral::{CmpOp, Term, XLiteral};

fn err(message: impl Into<String>) -> RuleParseError {
    RuleParseError {
        line: 0,
        message: message.into(),
    }
}

/// Finds the first comparison operator, longest token first at each
/// position, returning `(lhs, op, rhs)`.
fn split_op(s: &str) -> Option<(&str, CmpOp, &str)> {
    let two: [(&str, CmpOp); 3] = [("<=", CmpOp::Le), (">=", CmpOp::Ge), ("!=", CmpOp::Ne)];
    let uni: [(&str, CmpOp); 3] = [("≤", CmpOp::Le), ("≥", CmpOp::Ge), ("≠", CmpOp::Ne)];
    let one: [(char, CmpOp); 3] = [('<', CmpOp::Lt), ('>', CmpOp::Gt), ('=', CmpOp::Eq)];
    let bytes = s.char_indices().collect::<Vec<_>>();
    for (i, c) in &bytes {
        let rest = &s[*i..];
        for (tok, op) in two {
            if let Some(tail) = rest.strip_prefix(tok) {
                return Some((&s[..*i], op, tail));
            }
        }
        for (tok, op) in uni {
            if let Some(tail) = rest.strip_prefix(tok) {
                return Some((&s[..*i], op, tail));
            }
        }
        for (ch, op) in one {
            if *c == ch {
                return Some((&s[..*i], op, &rest[ch.len_utf8()..]));
            }
        }
    }
    None
}

/// Parses a term `x<i>.<attr>`, returning it and the remaining string.
fn parse_term<'a>(s: &'a str, interner: &Interner) -> Result<(Term, &'a str), RuleParseError> {
    let (var, rest) = parse_var(s.trim())?;
    let rest = rest
        .strip_prefix('.')
        .ok_or_else(|| err(format!("expected `.` after variable in `{s}`")))?;
    let end = rest.find(['+', '-']).unwrap_or(rest.len());
    let attr_name = rest[..end].trim();
    if attr_name.is_empty() {
        return Err(err(format!("empty attribute in `{s}`")));
    }
    Ok((Term::new(var, interner.attr(attr_name)), &rest[end..]))
}

/// Parses one extended literal, e.g. `x1.birth>=x0.birth+12`.
pub fn parse_xliteral(s: &str, interner: &Interner) -> Result<XLiteral, RuleParseError> {
    let s = s.trim();
    let (lhs_str, op, rhs_str) =
        split_op(s).ok_or_else(|| err(format!("expected a comparison operator in `{s}`")))?;
    let (lhs, lhs_rest) = parse_term(lhs_str, interner)?;
    if !lhs_rest.trim().is_empty() {
        return Err(err(format!(
            "unexpected `{}` after left term in `{s}` (offsets belong on the right)",
            lhs_rest.trim()
        )));
    }
    let rhs_str = rhs_str.trim();
    if let Some(stripped) = rhs_str.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| err(format!("unterminated string in `{s}`")))?;
        return Ok(XLiteral::cmp_const(
            lhs.var,
            lhs.attr,
            op,
            Value::Str(interner.symbol(inner)),
        ));
    }
    if rhs_str.starts_with('x') {
        let (rhs, tail) = parse_term(rhs_str, interner)?;
        let tail = tail.trim();
        let offset: i64 = if tail.is_empty() {
            0
        } else {
            // `+d` or `-d`.
            tail.parse()
                .map_err(|_| err(format!("bad offset `{tail}` in `{s}`")))?
        };
        if lhs == rhs {
            return Err(err("literal compares a term with itself"));
        }
        return Ok(XLiteral::cmp_terms(lhs, op, rhs, offset));
    }
    let int: i64 = rhs_str
        .parse()
        .map_err(|_| err(format!("expected quoted string, integer, or term in `{s}`")))?;
    Ok(XLiteral::cmp_const(lhs.var, lhs.attr, op, Value::Int(int)))
}

/// Parses one extended rule in display syntax.
pub fn parse_xgfd(s: &str, interner: &Interner) -> Result<XGfd, RuleParseError> {
    let (pattern_str, dep) = split_rule(s)?;
    let pattern = parse_pattern_body(pattern_str, interner)?;
    let arrow = dep
        .rfind("->")
        .ok_or_else(|| err("missing `->` in dependency"))?;
    let (lhs_str, rhs_str) = (dep[..arrow].trim(), dep[arrow + 2..].trim());
    // `x0.a->x1.b` cannot occur (no such operator), but a trailing `-`
    // from a negative offset can: `x0.a=x1.b-3 -> …` splits fine because
    // rfind targets the *last* arrow. Guard the symmetric artifact:
    let lhs_str = lhs_str.strip_suffix('-').map(str::trim).unwrap_or(lhs_str);

    let mut lhs: Vec<XLiteral> = Vec::new();
    if !(lhs_str.is_empty() || lhs_str == "∅" || lhs_str == "true") {
        for part in lhs_str.split(['∧', '&']) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            lhs.push(parse_xliteral(part, interner)?);
        }
    }
    let rhs = if rhs_str == "false" {
        XRhs::False
    } else {
        XRhs::Lit(parse_xliteral(rhs_str, interner)?)
    };

    let max_var = lhs
        .iter()
        .map(XLiteral::max_var)
        .chain(match &rhs {
            XRhs::Lit(l) => Some(l.max_var()),
            XRhs::False => None,
        })
        .max();
    if let Some(mv) = max_var {
        if mv >= pattern.node_count() {
            return Err(err(format!(
                "literal variable x{mv} exceeds pattern arity {}",
                pattern.node_count()
            )));
        }
    }
    Ok(XGfd::new(pattern, lhs, rhs))
}

/// Parses an extended rule file: one rule per line, `#` comments and
/// blanks allowed.
pub fn parse_xrules(text: &str, interner: &Interner) -> Result<Vec<XGfd>, RuleParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_xgfd(line, interner) {
            Ok(g) => out.push(g),
            Err(mut e) => {
                e.line = i + 1;
                return Err(e);
            }
        }
    }
    Ok(out)
}

/// Renders an extended rule set, one per line (inverse of
/// [`parse_xrules`]).
pub fn render_xrules(rules: &[XGfd], interner: &Interner) -> String {
    let mut out = String::new();
    out.push_str("# gfd extended rules v1\n");
    for r in rules {
        out.push_str(&r.display(interner));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::AttrId;
    use gfd_pattern::{PLabel, Pattern};

    fn rules_fixture() -> (Interner, Vec<XGfd>) {
        let i = Interner::new();
        let person = PLabel::Is(i.label("person"));
        let parent = PLabel::Is(i.label("parent"));
        let birth = i.attr("birth");
        let death = i.attr("death");
        let q = Pattern::edge(person, parent, person);
        let rules = vec![
            // Arithmetic with positive offset.
            XGfd::new(
                q.clone(),
                vec![],
                XRhs::Lit(XLiteral::cmp_terms(
                    Term::new(1, birth),
                    CmpOp::Ge,
                    Term::new(0, birth),
                    12,
                )),
            ),
            // Premise + strict order + negative offset.
            XGfd::new(
                q.clone(),
                vec![XLiteral::cmp_terms(
                    Term::new(0, birth),
                    CmpOp::Lt,
                    Term::new(1, birth),
                    -2,
                )],
                XRhs::Lit(XLiteral::cmp_terms(
                    Term::new(0, death),
                    CmpOp::Le,
                    Term::new(1, death),
                    0,
                )),
            ),
            // Constants: int threshold and string equality; negative rule.
            XGfd::new(
                Pattern::single(person),
                vec![
                    XLiteral::cmp_const(0, birth, CmpOp::Gt, Value::Int(2100)),
                    XLiteral::cmp_const(
                        0,
                        i.attr("status"),
                        CmpOp::Ne,
                        Value::Str(i.symbol("fictional")),
                    ),
                ],
                XRhs::False,
            ),
        ];
        (i, rules)
    }

    #[test]
    fn roundtrip_rule_set() {
        let (i, rules) = rules_fixture();
        let text = render_xrules(&rules, &i);
        let parsed = parse_xrules(&text, &i).unwrap();
        assert_eq!(parsed, rules, "render:\n{text}");
    }

    #[test]
    fn parses_unicode_operators() {
        let i = Interner::new();
        i.label("t");
        let a = parse_xgfd("Q[x0:t*, x1:t; x0-r->x1](x0.v≤x1.v -> x0.v≠9)", &i).unwrap();
        let b = parse_xgfd("Q[x0:t*, x1:t; x0-r->x1](x0.v<=x1.v -> x0.v!=9)", &i).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn operator_precedence_longest_first() {
        let i = Interner::new();
        let v = i.attr("v");
        // `<=` must not parse as `<` followed by garbage.
        let l = parse_xliteral("x0.v<=5", &i).unwrap();
        assert_eq!(l, XLiteral::cmp_const(0, v, CmpOp::Le, Value::Int(5)));
        let l = parse_xliteral("x0.v<5", &i).unwrap();
        assert_eq!(l, XLiteral::cmp_const(0, v, CmpOp::Lt, Value::Int(5)));
    }

    #[test]
    fn base_equality_fragment_matches_base_parser() {
        let (i, _) = rules_fixture();
        // A pure-equality rule parses identically through both grammars.
        let line = "Q[x0:person*, x1:person; x0-parent->x1](x0.birth=1990 -> x0.death=x1.death)";
        let base = gfd_logic::parse_gfd(line, &i).unwrap();
        let ext = parse_xgfd(line, &i).unwrap();
        assert_eq!(XGfd::from_base(&base), ext);
        assert_eq!(ext.to_base(), Some(base));
    }

    #[test]
    fn mined_rules_roundtrip() {
        // Everything `discover_extended` emits must survive a round-trip.
        let mut b = gfd_graph::GraphBuilder::new();
        for x in 0..25i64 {
            let p = b.add_node("person");
            let c = b.add_node("person");
            b.set_attr(p, "birth", 1940 + x);
            b.set_attr(c, "birth", 1965 + x);
            b.add_edge(p, c, "parent");
        }
        let g = b.build();
        let cfg = crate::discovery::XDiscoveryConfig::new(2, 8);
        let mined = crate::discovery::discover_extended(&g, &cfg);
        assert!(!mined.is_empty());
        let rules: Vec<XGfd> = mined.into_iter().map(|r| r.gfd).collect();
        let text = render_xrules(&rules, g.interner());
        let parsed = parse_xrules(&text, g.interner()).unwrap();
        assert_eq!(parsed, rules);
    }

    #[test]
    fn errors_are_descriptive() {
        let i = Interner::new();
        i.label("t");
        assert!(parse_xgfd("Q[x0:t*](x0.v -> false)", &i)
            .unwrap_err()
            .message
            .contains("comparison operator"));
        assert!(parse_xgfd("Q[x0:t*](∅ -> x3.v=1)", &i)
            .unwrap_err()
            .message
            .contains("exceeds pattern arity"));
        let e = parse_xrules("# ok\nQ[x0:t*](∅ -> false)\nnope\n", &i).unwrap_err();
        assert_eq!(e.line, 3);
        let _ = AttrId(0);
    }
}
