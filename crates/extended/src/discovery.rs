//! Discovery of extended GFDs (§8's future-work algorithm, realised).
//!
//! The miner follows the architecture of `SeqDis` (§5.1) — frequent
//! pattern growth interleaved with levelwise dependency spawning — with a
//! literal space widened to built-in predicates:
//!
//! * **threshold literals** `x.A ≤ c` / `x.A ≥ c`, with `c` drawn from
//!   quantiles of the values observed at `(x, A)` across matches,
//! * **order literals** `x.A ⊙ y.B` between terms that are numeric in
//!   enough matches,
//! * **arithmetic literals** `x.A = y.B + d`, with `d` drawn from the most
//!   frequent observed differences, and
//! * **equality constants** `x.A = c` (the base-GFD fragment).
//!
//! Support is the pivoted `|Q(G, Xl, z)|` of §4.2 (anti-monotonic under
//! literal extension, so `σ`-pruning carries over). In addition the miner
//! carries the *confidence* `(|X-matches satisfying l|) / |X-matches|`,
//! the measure §8 borrows from YAGO-style KB rule mining \[36\]: with
//! `min_confidence = 1.0` only exact rules (`G ⊨ φ`) are reported; lower
//! values admit approximate rules that tolerate dirty data.
//!
//! Negative rules are spawned as in `NHSpawn` (§5.1): when extending `X`
//! by one literal empties `Q(G, X, z)` while the base was `σ`-frequent,
//! `Q[x̄](X → false)` is reported with the base's support.

use std::ops::ControlFlow;

use gfd_graph::{AttrId, FxHashMap, FxHashSet, Graph, LabelId, NodeId, Value};
use gfd_pattern::{canonical_code, for_each_match, End, Extension, PLabel, Pattern};

use crate::solver::{entails, is_conflicting};
use crate::xgfd::{XGfd, XRhs};
use crate::xliteral::{CmpOp, Term, XLiteral};

/// Configuration of the extended miner.
#[derive(Clone, Debug)]
pub struct XDiscoveryConfig {
    /// Bound `k` on pattern variables `|x̄|` (§4.3).
    pub k: usize,
    /// Support threshold `σ` (distinct pivots satisfying `X ∧ l`).
    pub sigma: usize,
    /// Maximum pattern edges (defaults to `k`).
    pub max_edges: usize,
    /// Maximum premises `|X|`.
    pub max_lhs_size: usize,
    /// Minimum confidence (`1.0` = exact rules only; see module docs).
    pub min_confidence: f64,
    /// Quantile thresholds generated per numeric term.
    pub thresholds_per_attr: usize,
    /// Frequent arithmetic offsets generated per term pair.
    pub offsets_per_pair: usize,
    /// Frequent equality constants generated per term.
    pub values_per_attr: usize,
    /// Attributes considered (`Γ`, §4.3); empty = every attribute in `G`.
    pub active_attrs: Vec<AttrId>,
    /// Cap on the number of patterns enumerated.
    pub max_patterns: usize,
    /// Cap on materialised matches per pattern (support becomes a lower
    /// bound once hit; mining remains sound for pruning).
    pub max_matches_per_pattern: usize,
    /// Whether to spawn negative rules.
    pub mine_negative: bool,
}

impl XDiscoveryConfig {
    /// Defaults for bound `k` and support `sigma`.
    pub fn new(k: usize, sigma: usize) -> XDiscoveryConfig {
        XDiscoveryConfig {
            k,
            sigma,
            max_edges: k,
            max_lhs_size: 2,
            min_confidence: 1.0,
            thresholds_per_attr: 3,
            offsets_per_pair: 2,
            values_per_attr: 3,
            active_attrs: Vec::new(),
            max_patterns: 400,
            max_matches_per_pattern: 200_000,
            mine_negative: true,
        }
    }
}

/// A mined extended rule with its statistics.
#[derive(Clone, Debug)]
pub struct XDiscovered {
    /// The rule.
    pub gfd: XGfd,
    /// `|Q(G, Xl, z)|` — pivoted support (§4.2); for negative rules, the
    /// support of the base (§4.2's minimal-trigger semantics).
    pub support: usize,
    /// Fraction of `X`-satisfying matches that satisfy `l` (`1.0` for
    /// exact and negative rules).
    pub confidence: f64,
}

/// Column-oriented view of one pattern's matches.
struct PatternTable {
    pattern: Pattern,
    pivots: Vec<NodeId>,
    cols: FxHashMap<Term, Vec<Option<Value>>>,
    rows: usize,
}

impl PatternTable {
    fn build(q: &Pattern, g: &Graph, attrs: &[AttrId], cap: usize) -> PatternTable {
        let n = q.node_count();
        let mut pivots = Vec::new();
        let mut cols: FxHashMap<Term, Vec<Option<Value>>> = FxHashMap::default();
        for var in 0..n {
            for &a in attrs {
                cols.insert(Term::new(var, a), Vec::new());
            }
        }
        let mut rows = 0usize;
        let _ = for_each_match(q, g, |m| {
            pivots.push(m[q.pivot()]);
            for (var, &node) in m.iter().enumerate().take(n) {
                for &a in attrs {
                    cols.get_mut(&Term::new(var, a))
                        .expect("column exists")
                        .push(g.attr(node, a));
                }
            }
            rows += 1;
            if cap != 0 && rows >= cap {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        PatternTable {
            pattern: q.clone(),
            pivots,
            cols,
            rows,
        }
    }

    fn value(&self, row: usize, t: Term) -> Option<Value> {
        self.cols.get(&t).and_then(|c| c[row])
    }

    /// Evaluates one literal on one row (same semantics as
    /// [`XLiteral::satisfied`], against materialised columns).
    fn lit_holds(&self, row: usize, lit: &XLiteral) -> bool {
        let Some(a) = self.value(row, lit.lhs) else {
            return false;
        };
        match lit.rhs {
            crate::xliteral::Operand::Const(c) => match (a, c) {
                (Value::Int(x), Value::Int(y)) => lit.op.test_int(x, y as i128),
                _ => match lit.op {
                    CmpOp::Eq => a == c,
                    CmpOp::Ne => a != c,
                    _ => false,
                },
            },
            crate::xliteral::Operand::Term(t, d) => {
                let Some(b) = self.value(row, t) else {
                    return false;
                };
                match (a, b) {
                    (Value::Int(x), Value::Int(y)) => lit.op.test_int(x, y as i128 + d as i128),
                    _ if d == 0 => match lit.op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        _ => false,
                    },
                    _ => false,
                }
            }
        }
    }

    fn lhs_holds(&self, row: usize, x: &[XLiteral]) -> bool {
        x.iter().all(|l| self.lit_holds(row, l))
    }

    /// `(support pivots, lhs pivots, lhs matches, violations)` of `X → l`.
    fn evaluate(&self, x: &[XLiteral], l: &XLiteral) -> (usize, usize, usize, usize) {
        let mut supp: FxHashSet<NodeId> = FxHashSet::default();
        let mut lhs_pivots: FxHashSet<NodeId> = FxHashSet::default();
        let mut lhs_matches = 0usize;
        let mut violations = 0usize;
        for r in 0..self.rows {
            if !self.lhs_holds(r, x) {
                continue;
            }
            lhs_matches += 1;
            lhs_pivots.insert(self.pivots[r]);
            if self.lit_holds(r, l) {
                supp.insert(self.pivots[r]);
            } else {
                violations += 1;
            }
        }
        (supp.len(), lhs_pivots.len(), lhs_matches, violations)
    }

    /// Distinct pivots satisfying `X` alone.
    fn lhs_support(&self, x: &[XLiteral]) -> usize {
        let mut pivots: FxHashSet<NodeId> = FxHashSet::default();
        for r in 0..self.rows {
            if self.lhs_holds(r, x) {
                pivots.insert(self.pivots[r]);
            }
        }
        pivots.len()
    }
}

/// Frequent `(source label, edge label, destination label)` triples.
fn frequent_triples(g: &Graph, sigma: usize) -> Vec<(LabelId, LabelId, LabelId)> {
    let mut counts: FxHashMap<(LabelId, LabelId, LabelId), usize> = FxHashMap::default();
    for e in g.edges() {
        *counts
            .entry((g.node_label(e.src), e.label, g.node_label(e.dst)))
            .or_insert(0) += 1;
    }
    let mut out: Vec<_> = counts.into_iter().filter(|(_, c)| *c >= sigma).collect();
    out.sort_by_key(|&(t, c)| (std::cmp::Reverse(c), t));
    out.into_iter().map(|(t, _)| t).collect()
}

/// Levelwise frequent-pattern enumeration (the `VSpawn` skeleton of §5.1,
/// restricted to concrete labels).
fn enumerate_patterns(g: &Graph, cfg: &XDiscoveryConfig) -> Vec<Pattern> {
    let triples = frequent_triples(g, cfg.sigma);
    let mut seen: FxHashSet<_> = FxHashSet::default();
    let mut out: Vec<Pattern> = Vec::new();
    let mut frontier: Vec<Pattern> = Vec::new();

    for &(s, e, d) in &triples {
        let q = Pattern::edge(PLabel::Is(s), PLabel::Is(e), PLabel::Is(d));
        if seen.insert(canonical_code(&q)) && pattern_frequent(&q, g, cfg) {
            out.push(q.clone());
            frontier.push(q);
        }
        if out.len() >= cfg.max_patterns {
            return out;
        }
    }

    while !frontier.is_empty() && out.len() < cfg.max_patterns {
        let mut next = Vec::new();
        for q in &frontier {
            if q.edge_count() >= cfg.max_edges {
                continue;
            }
            for ext in extensions(q, &triples, cfg.k) {
                let q2 = q.extend(&ext);
                if !seen.insert(canonical_code(&q2)) {
                    continue;
                }
                if pattern_frequent(&q2, g, cfg) {
                    out.push(q2.clone());
                    next.push(q2);
                    if out.len() >= cfg.max_patterns {
                        return out;
                    }
                }
            }
        }
        frontier = next;
    }
    out
}

/// Candidate one-edge extensions of `q` from the frequent triple list:
/// attach a new node at any variable (both directions) or close a cycle
/// between two existing variables.
fn extensions(q: &Pattern, triples: &[(LabelId, LabelId, LabelId)], k: usize) -> Vec<Extension> {
    let mut out = Vec::new();
    let grown = q.node_count() < k;
    for v in 0..q.node_count() {
        let PLabel::Is(vl) = q.node_label(v) else {
            continue;
        };
        for &(s, e, d) in triples {
            if grown && s == vl {
                out.push(Extension {
                    src: End::Var(v),
                    dst: End::New(PLabel::Is(d)),
                    label: PLabel::Is(e),
                });
            }
            if grown && d == vl {
                out.push(Extension {
                    src: End::New(PLabel::Is(s)),
                    dst: End::Var(v),
                    label: PLabel::Is(e),
                });
            }
            // Cycle-closing edges between existing variables.
            for u in 0..q.node_count() {
                if u == v {
                    continue;
                }
                let PLabel::Is(ul) = q.node_label(u) else {
                    continue;
                };
                if s == vl && d == ul && q.edges_between(v, u).is_empty() {
                    out.push(Extension {
                        src: End::Var(v),
                        dst: End::Var(u),
                        label: PLabel::Is(e),
                    });
                }
            }
        }
    }
    out
}

/// `supp(Q, G) ≥ σ` with early exit once enough distinct pivots are seen.
fn pattern_frequent(q: &Pattern, g: &Graph, cfg: &XDiscoveryConfig) -> bool {
    let mut pivots: FxHashSet<NodeId> = FxHashSet::default();
    let mut rows = 0usize;
    let _ = for_each_match(q, g, |m| {
        pivots.insert(m[q.pivot()]);
        rows += 1;
        if pivots.len() >= cfg.sigma || rows >= cfg.max_matches_per_pattern {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    pivots.len() >= cfg.sigma
}

/// Literal candidates harvested from one pattern table.
struct Candidates {
    /// RHS candidates (all flavours).
    rhs: Vec<XLiteral>,
    /// LHS candidates (thresholds, constants, order pairs — no `≠`, which
    /// rarely discriminates and doubles the levelwise space).
    lhs: Vec<XLiteral>,
}

fn harvest(table: &PatternTable, cfg: &XDiscoveryConfig) -> Candidates {
    let mut rhs = Vec::new();
    let mut lhs = Vec::new();
    let min_rows = cfg.sigma.max(1);

    // Per-term statistics.
    let mut numeric_terms: Vec<(Term, Vec<i64>)> = Vec::new();
    for (&t, col) in &table.cols {
        let mut ints: Vec<i64> = Vec::new();
        let mut freq: FxHashMap<Value, usize> = FxHashMap::default();
        let mut present = 0usize;
        for v in col.iter().flatten() {
            present += 1;
            *freq.entry(*v).or_insert(0) += 1;
            if let Value::Int(i) = v {
                ints.push(*i);
            }
        }
        if present < min_rows {
            continue;
        }
        // Equality constants: most frequent values.
        let mut by_freq: Vec<(Value, usize)> = freq.into_iter().collect();
        by_freq.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
        for (v, c) in by_freq.into_iter().take(cfg.values_per_attr) {
            if c >= min_rows {
                let lit = XLiteral::cmp_const(t.var, t.attr, CmpOp::Eq, v);
                rhs.push(lit);
                lhs.push(lit);
            }
        }
        // Threshold literals on numeric terms.
        if ints.len() >= min_rows && cfg.thresholds_per_attr > 0 {
            ints.sort_unstable();
            let qs = cfg.thresholds_per_attr;
            let mut cuts: Vec<i64> = (1..=qs)
                .map(|i| ints[(ints.len() - 1) * i / (qs + 1)])
                .collect();
            cuts.dedup();
            for c in cuts {
                for op in [CmpOp::Le, CmpOp::Ge] {
                    let lit = XLiteral::cmp_const(t.var, t.attr, op, Value::Int(c));
                    rhs.push(lit);
                    lhs.push(lit);
                }
            }
            numeric_terms.push((t, ints));
        }
    }

    // Order and arithmetic literals between numeric term pairs.
    numeric_terms.sort_by_key(|(t, _)| *t);
    for i in 0..numeric_terms.len() {
        for j in (i + 1)..numeric_terms.len() {
            let (a, _) = numeric_terms[i];
            let (b, _) = numeric_terms[j];
            // Paired rows where both are integers.
            let (ca, cb) = (&table.cols[&a], &table.cols[&b]);
            let mut diffs: FxHashMap<i64, usize> = FxHashMap::default();
            let mut both = 0usize;
            for r in 0..table.rows {
                if let (Some(Value::Int(x)), Some(Value::Int(y))) = (ca[r], cb[r]) {
                    both += 1;
                    if let Some(d) = x.checked_sub(y) {
                        *diffs.entry(d).or_insert(0) += 1;
                    }
                }
            }
            if both < min_rows {
                continue;
            }
            for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt] {
                let lit = XLiteral::cmp_terms(a, op, b, 0);
                rhs.push(lit);
                lhs.push(lit);
            }
            rhs.push(XLiteral::cmp_terms(a, CmpOp::Eq, b, 0));
            lhs.push(XLiteral::cmp_terms(a, CmpOp::Eq, b, 0));
            rhs.push(XLiteral::cmp_terms(a, CmpOp::Ne, b, 0));
            let mut by_freq: Vec<(i64, usize)> = diffs.into_iter().collect();
            by_freq.sort_by_key(|&(d, c)| (std::cmp::Reverse(c), d));
            for (d, c) in by_freq.into_iter().take(cfg.offsets_per_pair) {
                if d != 0 && c >= min_rows {
                    rhs.push(XLiteral::cmp_terms(a, CmpOp::Eq, b, d));
                    lhs.push(XLiteral::cmp_terms(a, CmpOp::Eq, b, d));
                }
            }
        }
    }

    rhs.sort_unstable();
    rhs.dedup();
    lhs.sort_unstable();
    lhs.dedup();
    Candidates { rhs, lhs }
}

/// Mines extended GFDs from `g`.
pub fn discover_extended(g: &Graph, cfg: &XDiscoveryConfig) -> Vec<XDiscovered> {
    let attrs: Vec<AttrId> = if cfg.active_attrs.is_empty() {
        (0..g.interner().attr_count())
            .map(AttrId::from_index)
            .collect()
    } else {
        cfg.active_attrs.clone()
    };
    let mut out: Vec<XDiscovered> = Vec::new();

    for q in enumerate_patterns(g, cfg) {
        let table = PatternTable::build(&q, g, &attrs, cfg.max_matches_per_pattern);
        if table.rows == 0 {
            continue;
        }
        let cands = harvest(&table, cfg);
        mine_pattern(&table, &cands, cfg, &mut out);
    }

    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.gfd.lhs().len().cmp(&b.gfd.lhs().len()))
    });
    out
}

/// Levelwise dependency mining over one pattern (the `HSpawn`/`NHSpawn`
/// loop of §5.1 with extended literals).
fn mine_pattern(
    table: &PatternTable,
    cands: &Candidates,
    cfg: &XDiscoveryConfig,
    out: &mut Vec<XDiscovered>,
) {
    // Negative premises found on this pattern (deduplicated across RHS
    // branches — the same emptying X is reachable from many `l`s — and
    // kept minimal: a superset of an emitted negative is implied by it).
    let mut negatives: Vec<(Vec<XLiteral>, usize)> = Vec::new();
    for &l in &cands.rhs {
        // Accepted premise sets for this consequence (reduction check).
        let mut accepted: Vec<Vec<XLiteral>> = Vec::new();
        // Level 0: X = ∅.
        let (supp, _, matches, violations) = table.evaluate(&[], &l);
        if supp < cfg.sigma {
            // Anti-monotone in X (Theorem 3): no extension can recover σ.
            continue;
        }
        let conf = (matches - violations) as f64 / matches as f64;
        let exact = violations == 0;
        if conf >= cfg.min_confidence {
            out.push(XDiscovered {
                gfd: XGfd::new(table.pattern.clone(), vec![], XRhs::Lit(l)),
                support: supp,
                confidence: conf,
            });
            accepted.push(vec![]);
        }
        if exact {
            continue; // Lemma 4(b): supersets of X are not reduced.
        }

        // Levelwise premise extension.
        let mut frontier: Vec<Vec<XLiteral>> = vec![vec![]];
        for _level in 1..=cfg.max_lhs_size {
            let mut next: Vec<Vec<XLiteral>> = Vec::new();
            for x in &frontier {
                let start = x.last().copied();
                for &lp in &cands.lhs {
                    // Enforce ascending order to enumerate each set once.
                    if let Some(prev) = start {
                        if lp <= prev {
                            continue;
                        }
                    }
                    if lp == l {
                        continue;
                    }
                    let mut x2 = x.clone();
                    x2.push(lp);
                    if accepted.iter().any(|a| a.iter().all(|al| x2.contains(al))) {
                        continue; // not reduced: a subset already holds
                    }
                    if is_conflicting(&x2) || entails(&x2, &l) {
                        continue; // trivial
                    }
                    let (supp, lhs_pivots, matches, violations) = table.evaluate(&x2, &l);
                    if matches == 0 {
                        // NHSpawn: X₂ empties the LHS; the base (x) was
                        // σ-frequent, so X₂ → false is a supported
                        // negative rule.
                        if cfg.mine_negative {
                            let base_supp = table.lhs_support(x);
                            let redundant = negatives
                                .iter()
                                .any(|(nx, _)| nx.iter().all(|nl| x2.contains(nl)));
                            if base_supp >= cfg.sigma && !redundant {
                                negatives.push((x2.clone(), base_supp));
                            }
                        }
                        continue;
                    }
                    if supp < cfg.sigma {
                        continue; // anti-monotone prune
                    }
                    let conf = (matches - violations) as f64 / matches as f64;
                    if conf >= cfg.min_confidence {
                        out.push(XDiscovered {
                            gfd: XGfd::new(table.pattern.clone(), x2.clone(), XRhs::Lit(l)),
                            support: supp,
                            confidence: conf,
                        });
                        accepted.push(x2.clone());
                        if violations == 0 {
                            continue; // exact: stop extending this branch
                        }
                    }
                    let _ = lhs_pivots;
                    next.push(x2);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
    }
    for (x, support) in negatives {
        out.push(XDiscovered {
            gfd: XGfd::new(table.pattern.clone(), x, XRhs::False),
            support,
            confidence: 1.0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphBuilder;

    /// A parent graph where every parent is exactly 25 years older than
    /// the child, except noise.
    fn generations(noisy: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..40i64 {
            let p = b.add_node("person");
            let c = b.add_node("person");
            b.set_attr(p, "birth", 1940 + i);
            let gap = if i < noisy as i64 { 1 } else { 25 };
            b.set_attr(c, "birth", 1940 + i + gap);
            b.add_edge(p, c, "parent");
        }
        b.build()
    }

    #[test]
    fn discovers_age_gap_rule() {
        let g = generations(0);
        let cfg = XDiscoveryConfig::new(2, 10);
        let rules = discover_extended(&g, &cfg);
        assert!(!rules.is_empty());
        let birth = g.interner().lookup_attr("birth").unwrap();
        // The exact arithmetic rule x1.birth = x0.birth + 25 must appear
        // (in canonical orientation: x0.birth = x1.birth − 25).
        let want = XLiteral::cmp_terms(Term::new(0, birth), CmpOp::Eq, Term::new(1, birth), -25);
        assert!(
            rules
                .iter()
                .any(|r| r.gfd.rhs() == XRhs::Lit(want) && r.confidence == 1.0),
            "expected the +25 arithmetic rule; got {} rules",
            rules.len()
        );
        // The order rule x0.birth < x1.birth must appear too.
        let lt = XLiteral::cmp_terms(Term::new(0, birth), CmpOp::Lt, Term::new(1, birth), 0);
        assert!(rules.iter().any(|r| r.gfd.rhs() == XRhs::Lit(lt)));
        // Everything reported at confidence 1.0 must hold on G.
        for r in rules.iter().filter(|r| r.confidence == 1.0) {
            assert!(crate::validation::satisfies(&g, &r.gfd), "{:?}", r.gfd);
        }
    }

    #[test]
    fn confidence_threshold_admits_noisy_rules() {
        let g = generations(3); // 3 of 40 edges are dirty
        let exact = discover_extended(&g, &XDiscoveryConfig::new(2, 10));
        let birth = g.interner().lookup_attr("birth").unwrap();
        let want = XLiteral::cmp_terms(Term::new(0, birth), CmpOp::Eq, Term::new(1, birth), -25);
        assert!(
            !exact
                .iter()
                .any(|r| r.gfd.rhs() == XRhs::Lit(want) && r.gfd.lhs().is_empty()),
            "dirty data must break the exact rule"
        );
        let mut cfg = XDiscoveryConfig::new(2, 10);
        cfg.min_confidence = 0.9;
        let approx = discover_extended(&g, &cfg);
        let found = approx
            .iter()
            .find(|r| r.gfd.rhs() == XRhs::Lit(want) && r.gfd.lhs().is_empty())
            .expect("approximate mining recovers the rule");
        assert!(found.confidence >= 0.9 && found.confidence < 1.0);
    }

    #[test]
    fn support_threshold_prunes() {
        let g = generations(0);
        let cfg = XDiscoveryConfig::new(2, 1_000_000);
        assert!(discover_extended(&g, &cfg).is_empty());
    }

    #[test]
    fn frequent_triples_ranked() {
        let g = generations(0);
        let t = frequent_triples(&g, 10);
        assert_eq!(t.len(), 1);
        let t = frequent_triples(&g, 41);
        assert!(t.is_empty());
    }

    #[test]
    fn pattern_enumeration_respects_caps() {
        let g = generations(0);
        let mut cfg = XDiscoveryConfig::new(3, 5);
        cfg.max_patterns = 2;
        let pats = enumerate_patterns(&g, &cfg);
        assert!(pats.len() <= 2);
        for q in &pats {
            assert!(q.node_count() <= 3);
        }
    }

    #[test]
    fn reported_support_is_pivot_count() {
        let g = generations(0);
        let cfg = XDiscoveryConfig::new(2, 10);
        let rules = discover_extended(&g, &cfg);
        for r in &rules {
            assert!(r.support >= 10);
            assert!(r.support <= g.node_count());
        }
    }
}
