//! # gfd-extended — GFDs with built-in predicates and arithmetic
//!
//! The paper's closing section (§8) announces the extension of `DisGFD`
//! to "GFDs with built-in comparison predicates and arithmetic
//! expressions" — the graph entity dependency (GED) line. This crate
//! implements that extension end to end:
//!
//! * [`xliteral`] — literals `x.A ⊙ c` and `x.A ⊙ y.B + d` with
//!   `⊙ ∈ {=, ≠, <, ≤, >, ≥}`,
//! * [`solver`] — conflict/entailment reasoning (union–find over
//!   type-agnostic equalities + difference-bound shortest paths),
//! * [`xgfd`] — the dependency type `Q[x̄](X → l)`, lifted losslessly
//!   from base GFDs,
//! * [`validation`] — `G ⊨ φ` and violation enumeration,
//! * [`implication`] — `Σ ⊨ φ` via the embedded-rule chase, and covers,
//! * [`discovery`] — mining extended rules: numeric thresholds from value
//!   quantiles, order/arithmetic correlations between connected entities,
//!   with the support/confidence model of §4.2,
//! * [`xtext`] — the round-tripping rule file format.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod discovery;
pub mod implication;
pub mod solver;
pub mod validation;
pub mod xgfd;
pub mod xliteral;
pub mod xtext;

pub use discovery::{discover_extended, XDiscovered, XDiscoveryConfig};
pub use implication::{xclosure_of, xcover, xcover_indices, ximplies, ximplies_refs, XClosure};
pub use solver::{entails, entails_all, is_conflicting, is_satisfiable_set, Analysis};
pub use validation::{find_violations, match_satisfies, satisfies, satisfies_all, violating_nodes};
pub use xgfd::{XGfd, XRhs};
pub use xliteral::{normalize_xliterals, CmpOp, Operand, Term, XLiteral};
pub use xtext::{parse_xgfd, parse_xliteral, parse_xrules, render_xrules};
