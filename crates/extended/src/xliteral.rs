//! Extended literals: built-in comparison predicates and linear arithmetic.
//!
//! The paper closes (§8) by announcing an extension of `DisGFD` to "GFDs
//! with built-in comparison predicates and arithmetic expressions" — the
//! graph entity dependencies (GEDs) line of work. This module defines those
//! literals over the variables of a pattern:
//!
//! * `x.A ⊙ c` — compare an attribute with a constant,
//! * `x.A ⊙ y.B + d` — compare two attributes up to an integer offset,
//!
//! with `⊙ ∈ {=, ≠, <, ≤, >, ≥}`. Base-GFD literals are the `⊙` = `=`,
//! `d = 0` fragment, so every [`gfd_logic::Literal`] converts losslessly
//! via [`XLiteral::from_base`].
//!
//! **Typing.** Attribute values are [`Value::Int`] or [`Value::Str`].
//! Order comparisons (`<, ≤, >, ≥`) and non-zero offsets are defined only
//! on integers; a match whose attribute is a string fails such a literal.
//! `=`/`≠` work on both types (`Int(5) ≠ Str("5")` — no coercion, as in
//! the base model). A literal mentioning a missing attribute is not
//! satisfied, mirroring §2.2's schemaless convention.

use gfd_graph::{AttrId, Graph, Interner, NodeId, Value};
use gfd_pattern::Var;

/// A term `x.A`: attribute `A` of pattern variable `x`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Term {
    /// The pattern variable `x`.
    pub var: Var,
    /// The attribute `A`.
    pub attr: AttrId,
}

impl Term {
    /// Builds the term `x.A`.
    pub fn new(var: Var, attr: AttrId) -> Term {
        Term { var, attr }
    }

    /// Human-readable rendering, e.g. `x0.age`.
    pub fn display(&self, interner: &Interner) -> String {
        format!("x{}.{}", self.var, interner.attr_name(self.attr))
    }
}

/// A comparison operator of a built-in predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// The operator with sides swapped: `a ⊙ b ⟺ b ⊙.swap() a`.
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation: `¬(a ⊙ b) ⟺ a ⊙.negate() b`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Applies the comparison to two integers.
    pub fn test_int(self, a: i64, b: i128) -> bool {
        let a = a as i128;
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Whether the operator is an order relation (undefined on strings).
    pub fn is_order(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }

    /// ASCII rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// The right-hand operand of an extended literal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Operand {
    /// A constant `c`.
    Const(Value),
    /// A shifted term `y.B + d` (`d = 0` is the plain term; `d ≠ 0`
    /// requires integer values).
    Term(Term, i64),
}

/// An extended literal `x.A ⊙ rhs`.
///
/// Term–term literals are stored in a normalised orientation (smaller
/// `(var, attr)` on the left, operator and offset adjusted), so
/// syntactically equivalent predicates compare and hash equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct XLiteral {
    /// The left term `x.A`.
    pub lhs: Term,
    /// The comparison `⊙`.
    pub op: CmpOp,
    /// The right operand.
    pub rhs: Operand,
}

impl XLiteral {
    /// Builds `x.A ⊙ c`.
    pub fn cmp_const(var: Var, attr: AttrId, op: CmpOp, value: Value) -> XLiteral {
        XLiteral {
            lhs: Term::new(var, attr),
            op,
            rhs: Operand::Const(value),
        }
    }

    /// Builds `x.A ⊙ y.B + d`, normalising orientation so the smaller
    /// `(var, attr)` term sits on the left.
    ///
    /// # Panics
    /// Panics on a self-comparison `x.A ⊙ x.A + d` — such literals are
    /// constant (trivially true or false) and must not be constructed;
    /// use no literal or an unsatisfiable constant literal instead.
    pub fn cmp_terms(l: Term, op: CmpOp, r: Term, offset: i64) -> XLiteral {
        assert!(l != r, "self-comparison x.A ⊙ x.A + d is not a literal");
        if l <= r {
            XLiteral {
                lhs: l,
                op,
                rhs: Operand::Term(r, offset),
            }
        } else {
            // l ⊙ r + d  ⟺  r ⊙.swap() l − d
            XLiteral {
                lhs: r,
                op: op.swap(),
                rhs: Operand::Term(l, -offset),
            }
        }
    }

    /// Converts a base-GFD literal (pure equality) into the extended form.
    pub fn from_base(lit: &gfd_logic::Literal) -> XLiteral {
        match *lit {
            gfd_logic::Literal::Const { var, attr, value } => {
                XLiteral::cmp_const(var, attr, CmpOp::Eq, value)
            }
            gfd_logic::Literal::VarVar {
                lvar,
                lattr,
                rvar,
                rattr,
            } => XLiteral::cmp_terms(Term::new(lvar, lattr), CmpOp::Eq, Term::new(rvar, rattr), 0),
        }
    }

    /// The logical negation (`=` ↔ `≠`, `<` ↔ `≥`, …).
    pub fn negate(&self) -> XLiteral {
        XLiteral {
            lhs: self.lhs,
            op: self.op.negate(),
            rhs: self.rhs,
        }
    }

    /// Variables mentioned by the literal.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        let second = match self.rhs {
            Operand::Term(t, _) => Some(t.var),
            Operand::Const(_) => None,
        };
        std::iter::once(self.lhs.var).chain(second)
    }

    /// Largest variable index mentioned.
    pub fn max_var(&self) -> Var {
        self.vars().max().expect("literal mentions a variable")
    }

    /// Applies a total variable remapping (an embedding image vector
    /// indexed by old variable), re-normalising orientation.
    pub fn remap(&self, f: &[Var]) -> XLiteral {
        let lhs = Term::new(f[self.lhs.var], self.lhs.attr);
        match self.rhs {
            Operand::Const(c) => XLiteral {
                lhs,
                op: self.op,
                rhs: Operand::Const(c),
            },
            Operand::Term(t, d) => {
                XLiteral::cmp_terms(lhs, self.op, Term::new(f[t.var], t.attr), d)
            }
        }
    }

    /// Whether the match `m` satisfies the literal in `g`. Missing
    /// attributes and type mismatches fail the literal (never error).
    pub fn satisfied(&self, m: &[NodeId], g: &Graph) -> bool {
        let Some(a) = g.attr(m[self.lhs.var], self.lhs.attr) else {
            return false;
        };
        match self.rhs {
            Operand::Const(c) => match (a, c) {
                (Value::Int(x), Value::Int(y)) => self.op.test_int(x, y as i128),
                // Mixed or string comparisons: only =/≠ are defined.
                _ => match self.op {
                    CmpOp::Eq => a == c,
                    CmpOp::Ne => a != c,
                    _ => false,
                },
            },
            Operand::Term(t, d) => {
                let Some(b) = g.attr(m[t.var], t.attr) else {
                    return false;
                };
                match (a, b) {
                    (Value::Int(x), Value::Int(y)) => self.op.test_int(x, y as i128 + d as i128),
                    _ if d == 0 => match self.op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        _ => false,
                    },
                    // Non-zero offset forces integers.
                    _ => false,
                }
            }
        }
    }

    /// Whether the literal is the plain-equality fragment expressible as a
    /// base [`gfd_logic::Literal`].
    pub fn is_base(&self) -> bool {
        self.op == CmpOp::Eq
            && match self.rhs {
                Operand::Const(_) => true,
                Operand::Term(_, d) => d == 0,
            }
    }

    /// Converts back to a base literal when [`Self::is_base`] holds.
    pub fn to_base(&self) -> Option<gfd_logic::Literal> {
        if self.op != CmpOp::Eq {
            return None;
        }
        match self.rhs {
            Operand::Const(c) => Some(gfd_logic::Literal::constant(self.lhs.var, self.lhs.attr, c)),
            Operand::Term(t, 0) => Some(gfd_logic::Literal::var_var(
                self.lhs.var,
                self.lhs.attr,
                t.var,
                t.attr,
            )),
            Operand::Term(..) => None,
        }
    }

    /// Human-readable rendering, e.g. `x0.age<=x1.age+18`. String
    /// constants are quoted; integers are not (the parser assigns types
    /// by that distinction).
    pub fn display(&self, interner: &Interner) -> String {
        let rhs = match self.rhs {
            Operand::Const(Value::Int(i)) => i.to_string(),
            Operand::Const(c) => format!("\"{}\"", c.display(interner)),
            Operand::Term(t, 0) => t.display(interner),
            Operand::Term(t, d) if d > 0 => format!("{}+{}", t.display(interner), d),
            Operand::Term(t, d) => format!("{}{}", t.display(interner), d),
        };
        format!("{}{}{}", self.lhs.display(interner), self.op.symbol(), rhs)
    }
}

/// Sorts and deduplicates a set of extended literals into canonical form.
pub fn normalize_xliterals(mut lits: Vec<XLiteral>) -> Vec<XLiteral> {
    lits.sort_unstable();
    lits.dedup();
    lits
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphBuilder;

    #[test]
    fn op_algebra() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.swap().swap(), op);
            assert_eq!(op.negate().negate(), op);
            // a ⊙ b ⟺ b ⊙.swap a on sample values.
            for (a, b) in [(1i64, 2i128), (2, 2), (3, 2)] {
                assert_eq!(op.test_int(a, b), op.swap().test_int(b as i64, a as i128));
                assert_eq!(op.test_int(a, b), !op.negate().test_int(a, b));
            }
        }
        assert!(CmpOp::Lt.is_order());
        assert!(!CmpOp::Eq.is_order());
    }

    #[test]
    fn term_term_orientation_normalises() {
        let a = Term::new(0, AttrId(1));
        let b = Term::new(1, AttrId(0));
        // x0.A1 < x1.A0 + 3  and  x1.A0 > x0.A1 − 3 are the same literal.
        let l1 = XLiteral::cmp_terms(a, CmpOp::Lt, b, 3);
        let l2 = XLiteral::cmp_terms(b, CmpOp::Gt, a, -3);
        assert_eq!(l1, l2);
        assert_eq!(l1.lhs, a);
    }

    #[test]
    #[should_panic(expected = "self-comparison")]
    fn self_comparison_rejected() {
        let t = Term::new(0, AttrId(0));
        let _ = XLiteral::cmp_terms(t, CmpOp::Le, t, 1);
    }

    #[test]
    fn satisfaction_int_semantics() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("person");
        let n1 = b.add_node("person");
        b.set_attr(n0, "age", 30i64);
        b.set_attr(n1, "age", 55i64);
        let g = b.build();
        let age = g.interner().lookup_attr("age").unwrap();
        let m = [n0, n1];

        let lt = XLiteral::cmp_terms(Term::new(0, age), CmpOp::Lt, Term::new(1, age), 0);
        assert!(lt.satisfied(&m, &g));
        // Parent at least 18 years older: x1.age ≥ x0.age + 18.
        let gap = XLiteral::cmp_terms(Term::new(1, age), CmpOp::Ge, Term::new(0, age), 18);
        assert!(gap.satisfied(&m, &g));
        let gap30 = XLiteral::cmp_terms(Term::new(1, age), CmpOp::Ge, Term::new(0, age), 30);
        assert!(!gap30.satisfied(&m, &g));

        assert!(XLiteral::cmp_const(0, age, CmpOp::Le, Value::Int(30)).satisfied(&m, &g));
        assert!(!XLiteral::cmp_const(0, age, CmpOp::Gt, Value::Int(30)).satisfied(&m, &g));
        assert!(XLiteral::cmp_const(0, age, CmpOp::Ne, Value::Int(31)).satisfied(&m, &g));
    }

    #[test]
    fn satisfaction_string_and_missing() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("person");
        let n1 = b.add_node("person");
        b.set_attr(n0, "name", "ann");
        b.set_attr(n1, "name", "bob");
        b.set_attr(n1, "age", 5i64);
        let g = b.build();
        let name = g.interner().lookup_attr("name").unwrap();
        let age = g.interner().lookup_attr("age").unwrap();
        let ann = Value::Str(g.interner().lookup_symbol("ann").unwrap());
        let m = [n0, n1];

        assert!(XLiteral::cmp_const(0, name, CmpOp::Eq, ann).satisfied(&m, &g));
        assert!(XLiteral::cmp_const(1, name, CmpOp::Ne, ann).satisfied(&m, &g));
        // Order on strings is undefined → unsatisfied.
        assert!(!XLiteral::cmp_const(0, name, CmpOp::Lt, ann).satisfied(&m, &g));
        // Missing attribute → unsatisfied, even under ≠.
        assert!(!XLiteral::cmp_const(0, age, CmpOp::Ne, Value::Int(1)).satisfied(&m, &g));
        // Mixed types: = fails, ≠ holds (both present).
        let ne = XLiteral::cmp_terms(Term::new(0, name), CmpOp::Ne, Term::new(1, age), 0);
        assert!(ne.satisfied(&m, &g));
        let eq = XLiteral::cmp_terms(Term::new(0, name), CmpOp::Eq, Term::new(1, age), 0);
        assert!(!eq.satisfied(&m, &g));
        // Non-zero offset on strings → unsatisfied regardless of op.
        let off = XLiteral::cmp_terms(Term::new(0, name), CmpOp::Ne, Term::new(1, name), 1);
        assert!(!off.satisfied(&m, &g));
    }

    #[test]
    fn base_roundtrip() {
        let c = gfd_logic::Literal::constant(2, AttrId(1), Value::Int(7));
        let vv = gfd_logic::Literal::var_var(0, AttrId(0), 1, AttrId(1));
        for lit in [c, vv] {
            let x = XLiteral::from_base(&lit);
            assert!(x.is_base());
            assert_eq!(x.to_base(), Some(lit));
        }
        let strict = XLiteral::cmp_const(0, AttrId(0), CmpOp::Lt, Value::Int(1));
        assert!(!strict.is_base());
        assert_eq!(strict.to_base(), None);
    }

    #[test]
    fn remap_renormalises() {
        let lit = XLiteral::cmp_terms(
            Term::new(0, AttrId(0)),
            CmpOp::Lt,
            Term::new(1, AttrId(0)),
            5,
        );
        // Swap the variables: orientation flips, op and offset adjust.
        let mapped = lit.remap(&[1, 0]);
        assert_eq!(
            mapped,
            XLiteral::cmp_terms(
                Term::new(1, AttrId(0)),
                CmpOp::Lt,
                Term::new(0, AttrId(0)),
                5
            )
        );
        assert_eq!(mapped.lhs, Term::new(0, AttrId(0)));
        assert_eq!(mapped.op, CmpOp::Gt);
    }

    #[test]
    fn negation_roundtrip_and_semantics() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("a");
        b.set_attr(n0, "v", 10i64);
        let g = b.build();
        let v = g.interner().lookup_attr("v").unwrap();
        let m = [n0];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let lit = XLiteral::cmp_const(0, v, op, Value::Int(10));
            assert_eq!(lit.negate().negate(), lit);
            // With the attribute present and integer-typed, negation flips
            // satisfaction exactly.
            assert_ne!(lit.satisfied(&m, &g), lit.negate().satisfied(&m, &g));
        }
    }

    #[test]
    fn display_forms() {
        let i = Interner::new();
        let age = i.attr("age");
        let lit = XLiteral::cmp_terms(Term::new(0, age), CmpOp::Le, Term::new(1, age), 18);
        assert_eq!(lit.display(&i), "x0.age<=x1.age+18");
        let neg = XLiteral::cmp_terms(Term::new(0, age), CmpOp::Le, Term::new(1, age), -3);
        assert_eq!(neg.display(&i), "x0.age<=x1.age-3");
        let c = XLiteral::cmp_const(1, age, CmpOp::Gt, Value::Int(40));
        assert_eq!(c.display(&i), "x1.age>40");
        let s = XLiteral::cmp_const(1, age, CmpOp::Ne, Value::Str(i.symbol("n/a")));
        assert_eq!(s.display(&i), "x1.age!=\"n/a\"");
    }

    #[test]
    fn normalization_dedups_across_orientations() {
        let a = Term::new(0, AttrId(0));
        let b = Term::new(1, AttrId(0));
        let l1 = XLiteral::cmp_terms(a, CmpOp::Le, b, 2);
        let l2 = XLiteral::cmp_terms(b, CmpOp::Ge, a, -2);
        let out = normalize_xliterals(vec![l1, l2]);
        assert_eq!(out.len(), 1);
    }
}
