//! Validation `G ⊨ φ` for extended GFDs.
//!
//! Same contract as `gfd_logic::validation`, lifted to built-in
//! predicates: enumerate the isomorphic matches of `Q` (Prop. 2's
//! `O(|Σ|·|G|^k)` procedure) and test `X → l` per match.

use std::ops::ControlFlow;

use gfd_graph::{Graph, NodeId};
use gfd_pattern::for_each_match;

use crate::xgfd::{XGfd, XRhs};

/// Whether the match `m` satisfies `X → rhs`.
pub fn match_satisfies(gfd: &XGfd, m: &[NodeId], g: &Graph) -> bool {
    if !gfd.lhs().iter().all(|l| l.satisfied(m, g)) {
        return true; // vacuous
    }
    match gfd.rhs() {
        XRhs::Lit(l) => l.satisfied(m, g),
        XRhs::False => false,
    }
}

/// Whether `G ⊨ φ` — no match of the pattern violates `X → l`.
pub fn satisfies(g: &Graph, gfd: &XGfd) -> bool {
    for_each_match(gfd.pattern(), g, |m| {
        if match_satisfies(gfd, m, g) {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    })
    .is_continue()
}

/// Whether `G ⊨ Σ` for a set of extended GFDs.
pub fn satisfies_all(g: &Graph, sigma: &[XGfd]) -> bool {
    sigma.iter().all(|x| satisfies(g, x))
}

/// All violating matches of `φ` in `G` (capped at `limit`; `0` = no cap).
pub fn find_violations(g: &Graph, gfd: &XGfd, limit: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let _ = for_each_match(gfd.pattern(), g, |m| {
        if !match_satisfies(gfd, m, g) {
            out.push(m.to_vec());
            if limit != 0 && out.len() >= limit {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    out
}

/// Distinct nodes participating in violations of any GFD in `sigma` —
/// the entity-level error report used by the accuracy experiment.
pub fn violating_nodes(g: &Graph, sigma: &[XGfd]) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = Vec::new();
    for gfd in sigma {
        for m in find_violations(g, gfd, 0) {
            nodes.extend(m);
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xliteral::{CmpOp, Term, XLiteral};
    use gfd_graph::{Graph, GraphBuilder};
    use gfd_pattern::{PLabel, Pattern};

    /// A family tree: parents must be at least 12 years older than their
    /// children. One edge violates the rule.
    fn family() -> (Graph, XGfd) {
        let mut b = GraphBuilder::new();
        let grandma = b.add_node("person");
        let mother = b.add_node("person");
        let child = b.add_node("person");
        let fake = b.add_node("person");
        b.set_attr(grandma, "birth", 1940i64);
        b.set_attr(mother, "birth", 1965i64);
        b.set_attr(child, "birth", 1990i64);
        b.set_attr(fake, "birth", 1991i64);
        b.add_edge(grandma, mother, "parent");
        b.add_edge(mother, child, "parent");
        b.add_edge(fake, child, "parent"); // 1-year gap: inconsistent
        let g = b.build();
        let person = PLabel::Is(g.interner().lookup_label("person").unwrap());
        let parent = PLabel::Is(g.interner().lookup_label("parent").unwrap());
        let birth = g.interner().lookup_attr("birth").unwrap();
        let q = Pattern::edge(person, parent, person);
        // x0 parent-of x1 ⇒ x1.birth ≥ x0.birth + 12.
        let gfd = XGfd::new(
            q,
            vec![],
            crate::xgfd::XRhs::Lit(XLiteral::cmp_terms(
                Term::new(1, birth),
                CmpOp::Ge,
                Term::new(0, birth),
                12,
            )),
        );
        (g, gfd)
    }

    #[test]
    fn age_gap_rule_catches_inconsistency() {
        let (g, gfd) = family();
        assert!(!satisfies(&g, &gfd));
        let v = find_violations(&g, &gfd, 0);
        assert_eq!(v.len(), 1);
        // The violating pair is (fake, child).
        let viol = &v[0];
        assert_eq!(
            g.attr(viol[0], g.interner().lookup_attr("birth").unwrap()),
            Some(gfd_graph::Value::Int(1991))
        );
        let nodes = violating_nodes(&g, std::slice::from_ref(&gfd));
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn violation_limit_caps_enumeration() {
        let (g, gfd) = family();
        assert_eq!(find_violations(&g, &gfd, 1).len(), 1);
    }

    #[test]
    fn vacuous_lhs_and_missing_attrs() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("person");
        let c = b.add_node("person");
        b.add_edge(a, c, "parent");
        let g = b.build();
        let person = PLabel::Is(g.interner().lookup_label("person").unwrap());
        let parent = PLabel::Is(g.interner().lookup_label("parent").unwrap());
        let birth = g.interner().attr("birth");
        let q = Pattern::edge(person, parent, person);
        // LHS mentions a missing attribute → vacuously satisfied.
        let vacuous = XGfd::new(
            q.clone(),
            vec![XLiteral::cmp_const(
                0,
                birth,
                CmpOp::Ge,
                gfd_graph::Value::Int(0),
            )],
            crate::xgfd::XRhs::False,
        );
        assert!(satisfies(&g, &vacuous));
        // RHS mentioning a missing attribute fails the match.
        let failing = XGfd::new(
            q,
            vec![],
            crate::xgfd::XRhs::Lit(XLiteral::cmp_const(
                0,
                birth,
                CmpOp::Ge,
                gfd_graph::Value::Int(0),
            )),
        );
        assert!(!satisfies(&g, &failing));
    }

    #[test]
    fn negative_xgfd_flags_every_match() {
        let (g, gfd) = family();
        let neg = XGfd::new(gfd.pattern().clone(), vec![], crate::xgfd::XRhs::False);
        // Three parent edges, three violations.
        assert_eq!(find_violations(&g, &neg, 0).len(), 3);
        assert!(satisfies_all(&g, &[]));
        assert!(!satisfies_all(&g, &[neg]));
    }
}
