//! Extended GFDs `Q[x̄](X → l)` with built-in predicates (§8).
//!
//! The shape mirrors [`gfd_logic::Gfd`]: a pattern scopes the dependency,
//! `X` is a conjunction of extended literals, and the consequence is a
//! single literal or `false` (normal form, §2.2). Every base GFD lifts
//! losslessly via [`XGfd::from_base`].

use gfd_graph::Interner;
use gfd_logic::{Gfd, Rhs};
use gfd_pattern::Pattern;

use crate::solver::{entails, is_conflicting};
use crate::xliteral::{normalize_xliterals, XLiteral};

/// The consequence of an extended GFD.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum XRhs {
    /// A single extended literal.
    Lit(XLiteral),
    /// The Boolean constant `false` (negative GFDs).
    False,
}

/// An extended graph functional dependency `Q[x̄](X → l)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct XGfd {
    pattern: Pattern,
    lhs: Vec<XLiteral>,
    rhs: XRhs,
}

impl XGfd {
    /// Builds `Q[x̄](X → rhs)`, normalising `X`.
    ///
    /// # Panics
    /// Panics if a literal mentions a variable outside the pattern.
    pub fn new(pattern: Pattern, lhs: Vec<XLiteral>, rhs: XRhs) -> XGfd {
        let n = pattern.node_count();
        for l in &lhs {
            assert!(l.max_var() < n, "LHS literal variable out of pattern");
        }
        if let XRhs::Lit(l) = &rhs {
            assert!(l.max_var() < n, "RHS literal variable out of pattern");
        }
        XGfd {
            pattern,
            lhs: normalize_xliterals(lhs),
            rhs,
        }
    }

    /// Lifts a base GFD into the extended formalism.
    pub fn from_base(gfd: &Gfd) -> XGfd {
        let lhs = gfd.lhs().iter().map(XLiteral::from_base).collect();
        let rhs = match gfd.rhs() {
            Rhs::Lit(l) => XRhs::Lit(XLiteral::from_base(&l)),
            Rhs::False => XRhs::False,
        };
        XGfd::new(gfd.pattern().clone(), lhs, rhs)
    }

    /// Converts back to a base GFD when every literal is plain equality.
    pub fn to_base(&self) -> Option<Gfd> {
        let lhs = self
            .lhs
            .iter()
            .map(|l| l.to_base())
            .collect::<Option<Vec<_>>>()?;
        let rhs = match &self.rhs {
            XRhs::Lit(l) => Rhs::Lit(l.to_base()?),
            XRhs::False => Rhs::False,
        };
        Some(Gfd::new(self.pattern.clone(), lhs, rhs))
    }

    /// The pattern `Q[x̄]`.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The premises `X` (normalised).
    pub fn lhs(&self) -> &[XLiteral] {
        &self.lhs
    }

    /// The consequence.
    pub fn rhs(&self) -> XRhs {
        self.rhs
    }

    /// Whether the GFD is negative: consequence `false` with satisfiable
    /// `X` (§2.2). `X → false` with unsatisfiable `X` is trivial instead.
    pub fn is_negative(&self) -> bool {
        self.rhs == XRhs::False && !is_conflicting(&self.lhs)
    }

    /// Whether the GFD is trivial (§4.1): `X` unsatisfiable, or the
    /// consequence already follows from `X` alone.
    pub fn is_trivial(&self) -> bool {
        match &self.rhs {
            XRhs::False => is_conflicting(&self.lhs),
            XRhs::Lit(l) => is_conflicting(&self.lhs) || entails(&self.lhs, l),
        }
    }

    /// Human-readable rendering in the same `Q[…](X -> l)` shape as base
    /// rules (round-tripped by `xtext`).
    pub fn display(&self, interner: &Interner) -> String {
        let prem = if self.lhs.is_empty() {
            "∅".to_string()
        } else {
            self.lhs
                .iter()
                .map(|l| l.display(interner))
                .collect::<Vec<_>>()
                .join(" & ")
        };
        let rhs = match &self.rhs {
            XRhs::Lit(l) => l.display(interner),
            XRhs::False => "false".to_string(),
        };
        format!("{}({} -> {})", self.pattern.display(interner), prem, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xliteral::{CmpOp, Term};
    use gfd_graph::{AttrId, LabelId, Value};
    use gfd_logic::Literal;
    use gfd_pattern::PLabel;

    fn pat() -> Pattern {
        Pattern::edge(
            PLabel::Is(LabelId(0)),
            PLabel::Is(LabelId(1)),
            PLabel::Is(LabelId(2)),
        )
    }

    #[test]
    fn base_roundtrip() {
        let base = Gfd::new(
            pat(),
            vec![Literal::constant(0, AttrId(0), Value::Int(1))],
            Rhs::Lit(Literal::var_var(0, AttrId(1), 1, AttrId(1))),
        );
        let x = XGfd::from_base(&base);
        assert_eq!(x.to_base(), Some(base));
        assert!(!x.is_negative());
    }

    #[test]
    fn strict_predicates_do_not_lower() {
        let x = XGfd::new(
            pat(),
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(
                Term::new(0, AttrId(0)),
                CmpOp::Le,
                Term::new(1, AttrId(0)),
                0,
            )),
        );
        assert_eq!(x.to_base(), None);
    }

    #[test]
    fn triviality() {
        let a = Term::new(0, AttrId(0));
        let b = Term::new(1, AttrId(0));
        // X ⊨ l by order transitivity → trivial.
        let trivial = XGfd::new(
            pat(),
            vec![XLiteral::cmp_terms(a, CmpOp::Ge, b, 18)],
            XRhs::Lit(XLiteral::cmp_terms(a, CmpOp::Gt, b, 0)),
        );
        assert!(trivial.is_trivial());
        // Unsatisfiable X → trivial, and not negative despite rhs false.
        let unsat = XGfd::new(
            pat(),
            vec![
                XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(5)),
                XLiteral::cmp_const(0, AttrId(0), CmpOp::Lt, Value::Int(5)),
            ],
            XRhs::False,
        );
        assert!(unsat.is_trivial());
        assert!(!unsat.is_negative());
        // Genuine negative rule.
        let neg = XGfd::new(
            pat(),
            vec![XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(5))],
            XRhs::False,
        );
        assert!(neg.is_negative());
        assert!(!neg.is_trivial());
    }

    #[test]
    #[should_panic(expected = "out of pattern")]
    fn out_of_range_variable_rejected() {
        let _ = XGfd::new(
            pat(),
            vec![XLiteral::cmp_const(7, AttrId(0), CmpOp::Eq, Value::Int(1))],
            XRhs::False,
        );
    }

    #[test]
    fn display_renders() {
        let i = Interner::new();
        let (a, b, c) = (i.label("person"), i.label("parent"), i.label("person"));
        let age = i.attr("age");
        let q = Pattern::edge(PLabel::Is(a), PLabel::Is(b), PLabel::Is(c));
        let x = XGfd::new(
            q,
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(
                Term::new(0, age),
                CmpOp::Ge,
                Term::new(1, age),
                12,
            )),
        );
        let s = x.display(&i);
        assert!(s.contains("x0.age>=x1.age+12"), "{s}");
    }
}
