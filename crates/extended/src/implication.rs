//! Implication `Σ ⊨ φ` for extended GFDs.
//!
//! Lifts the fixed-parameter-tractable characterisation of §3: collect
//! every embedding of each rule of `Σ` into `φ`'s pattern, chase the
//! premise set `X` to a fixpoint (a rule instance fires when its remapped
//! premises are *entailed* by the accumulated set), and report implication
//! when the accumulated set is conflicting or entails the consequence.
//!
//! With built-in predicates, literal entailment goes through the
//! difference-bound solver instead of plain equality transitivity; the
//! procedure inherits the solver's precision (sound, complete up to
//! disequality chains — see `solver`). The cover computed from it is
//! therefore *conservative*: a rule is only removed when implication is
//! certain.

use std::ops::ControlFlow;

use gfd_pattern::{for_each_embedding, EmbedOptions, Pattern};

use crate::solver::{entails, is_conflicting};
use crate::xgfd::{XGfd, XRhs};
use crate::xliteral::XLiteral;

/// A remapped rule instance over the host pattern's variables.
struct Instance {
    premises: Vec<XLiteral>,
    /// `None` encodes a `false` consequence.
    conclusion: Option<XLiteral>,
}

/// The chased closure of `X` under `Σ`'s rules embedded in `q`.
pub struct XClosure {
    /// Accumulated literals (premises plus fired conclusions).
    pub literals: Vec<XLiteral>,
    /// Whether `false` was derived or the set became conflicting.
    pub falsified: bool,
}

impl XClosure {
    /// Whether the closure entails `l`.
    pub fn holds(&self, l: &XLiteral) -> bool {
        self.falsified || entails(&self.literals, l)
    }
}

/// Collects rule instances from all embeddings of `Σ`'s patterns in `q`.
fn instances<'a>(q: &Pattern, sigma: impl IntoIterator<Item = &'a XGfd>) -> Vec<Instance> {
    let mut out = Vec::new();
    let opts = EmbedOptions {
        preserve_pivot: false,
    };
    for phi in sigma {
        let p = phi.pattern();
        if p.node_count() > q.node_count() || p.edge_count() > q.edge_count() {
            continue;
        }
        let _ = for_each_embedding(p, q, opts, |f| {
            let premises = phi.lhs().iter().map(|l| l.remap(f)).collect();
            let conclusion = match phi.rhs() {
                XRhs::Lit(l) => Some(l.remap(f)),
                XRhs::False => None,
            };
            out.push(Instance {
                premises,
                conclusion,
            });
            ControlFlow::Continue(())
        });
    }
    out
}

/// Chases `x` under the rules of `Σ` embedded in `q` (the extended
/// `closure(Σ_Q, X)` of §3).
pub fn xclosure_of<'a>(
    q: &Pattern,
    sigma: impl IntoIterator<Item = &'a XGfd>,
    x: &[XLiteral],
) -> XClosure {
    let rules = instances(q, sigma);
    let mut c = XClosure {
        literals: x.to_vec(),
        falsified: is_conflicting(x),
    };
    let mut fired = vec![false; rules.len()];
    loop {
        if c.falsified {
            return c;
        }
        let mut changed = false;
        for (i, rule) in rules.iter().enumerate() {
            if fired[i] {
                continue;
            }
            if rule.premises.iter().all(|p| entails(&c.literals, p)) {
                fired[i] = true;
                changed = true;
                match &rule.conclusion {
                    Some(l) => {
                        c.literals.push(*l);
                        if is_conflicting(&c.literals) {
                            c.falsified = true;
                        }
                    }
                    None => c.falsified = true,
                }
            }
        }
        if !changed {
            return c;
        }
    }
}

/// Whether `Σ ⊨ φ` (sound; see module docs).
pub fn ximplies(sigma: &[XGfd], phi: &XGfd) -> bool {
    ximplies_refs(sigma.iter(), phi)
}

/// [`ximplies`] over borrowed rules.
pub fn ximplies_refs<'a>(sigma: impl IntoIterator<Item = &'a XGfd>, phi: &XGfd) -> bool {
    let c = xclosure_of(phi.pattern(), sigma, phi.lhs());
    match phi.rhs() {
        XRhs::False => c.falsified,
        XRhs::Lit(l) => c.holds(&l),
    }
}

/// A conservative cover of `Σ`: repeatedly removes rules implied by the
/// rest until a fixpoint, preferring to drop the most specific rules
/// first (as `SeqCover`, §5.2). Returns surviving indices, sorted.
pub fn xcover_indices(sigma: &[XGfd]) -> Vec<usize> {
    let mut removed = vec![false; sigma.len()];
    let mut order: Vec<usize> = (0..sigma.len()).collect();
    order.sort_by_key(|&i| {
        let g = &sigma[i];
        std::cmp::Reverse((
            g.pattern().edge_count(),
            g.pattern().node_count(),
            g.lhs().len(),
        ))
    });
    loop {
        let mut changed = false;
        for &i in &order {
            if removed[i] {
                continue;
            }
            let rest = sigma
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && !removed[*j])
                .map(|(_, g)| g);
            if ximplies_refs(rest, &sigma[i]) {
                removed[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..sigma.len()).filter(|&i| !removed[i]).collect()
}

/// A conservative cover of `Σ`, returning the surviving rules.
pub fn xcover(sigma: &[XGfd]) -> Vec<XGfd> {
    xcover_indices(sigma)
        .into_iter()
        .map(|i| sigma[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xliteral::{CmpOp, Term};
    use gfd_graph::{AttrId, LabelId, Value};
    use gfd_pattern::{End, Extension, PLabel, Pattern};

    fn l(i: u32) -> PLabel {
        PLabel::Is(LabelId(i))
    }

    fn edge_pattern() -> Pattern {
        Pattern::edge(l(0), l(1), l(2))
    }

    #[test]
    fn weaker_bound_is_implied() {
        let a = Term::new(0, AttrId(0));
        // φ1: ∅ → x0.v ≥ 18 implies φ2: ∅ → x0.v ≥ 10 on the same pattern.
        let phi1 = XGfd::new(
            edge_pattern(),
            vec![],
            XRhs::Lit(XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(18))),
        );
        let phi2 = XGfd::new(
            edge_pattern(),
            vec![],
            XRhs::Lit(XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(10))),
        );
        assert!(ximplies(std::slice::from_ref(&phi1), &phi2));
        assert!(!ximplies(std::slice::from_ref(&phi2), &phi1));
        let _ = a;
    }

    /// `person --parent--> person`: both endpoints share a label so the
    /// one-hop rule embeds into every hop of a longer chain.
    fn hop_pattern() -> Pattern {
        Pattern::edge(l(0), l(1), l(0))
    }

    /// The two-hop chain `x0 → x1 → x2` over [`hop_pattern`]'s labels.
    fn chain2() -> Pattern {
        hop_pattern().extend(&Extension {
            src: End::Var(1),
            dst: End::New(l(0)),
            label: l(1),
        })
    }

    #[test]
    fn order_rules_chain_transitively() {
        // On a 3-node path pattern: (x0 ≤ x1) ∧ (x1 ≤ x2) rules imply the
        // end-to-end rule x0 ≤ x2.
        let v = AttrId(0);
        let step1 = XGfd::new(
            hop_pattern(),
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(
                Term::new(0, v),
                CmpOp::Le,
                Term::new(1, v),
                0,
            )),
        );
        // chain2's second edge goes x1 → x2 with the same labels, so step1
        // embeds twice: (x0,x1) and (x1,x2).
        let end_to_end = XGfd::new(
            chain2(),
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(
                Term::new(0, v),
                CmpOp::Le,
                Term::new(2, v),
                0,
            )),
        );
        assert!(ximplies(std::slice::from_ref(&step1), &end_to_end));
    }

    #[test]
    fn arithmetic_offsets_compose_in_implication() {
        let v = AttrId(0);
        // Each hop adds at least 12.
        let hop = XGfd::new(
            hop_pattern(),
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(
                Term::new(1, v),
                CmpOp::Ge,
                Term::new(0, v),
                12,
            )),
        );
        let two_hops = XGfd::new(
            chain2(),
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(
                Term::new(2, v),
                CmpOp::Ge,
                Term::new(0, v),
                24,
            )),
        );
        assert!(ximplies(std::slice::from_ref(&hop), &two_hops));
        let too_strong = XGfd::new(
            chain2(),
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(
                Term::new(2, v),
                CmpOp::Ge,
                Term::new(0, v),
                25,
            )),
        );
        assert!(!ximplies(std::slice::from_ref(&hop), &too_strong));
    }

    #[test]
    fn false_propagates() {
        let neg = XGfd::new(
            edge_pattern(),
            vec![XLiteral::cmp_const(
                0,
                AttrId(0),
                CmpOp::Ge,
                Value::Int(100),
            )],
            XRhs::False,
        );
        // Stronger premises: X' ⊇ entails X, so the negative rule fires.
        let implied = XGfd::new(
            edge_pattern(),
            vec![XLiteral::cmp_const(
                0,
                AttrId(0),
                CmpOp::Ge,
                Value::Int(150),
            )],
            XRhs::False,
        );
        assert!(ximplies(std::slice::from_ref(&neg), &implied));
        let not_implied = XGfd::new(
            edge_pattern(),
            vec![XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(50))],
            XRhs::False,
        );
        assert!(!ximplies(std::slice::from_ref(&neg), &not_implied));
    }

    #[test]
    fn conflicting_premises_imply_anything() {
        let phi = XGfd::new(
            edge_pattern(),
            vec![
                XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(10)),
                XLiteral::cmp_const(0, AttrId(0), CmpOp::Lt, Value::Int(10)),
            ],
            XRhs::Lit(XLiteral::cmp_const(1, AttrId(3), CmpOp::Eq, Value::Int(7))),
        );
        assert!(ximplies(&[], &phi));
    }

    #[test]
    fn cover_removes_weaker_duplicates() {
        let strong = XGfd::new(
            edge_pattern(),
            vec![],
            XRhs::Lit(XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(18))),
        );
        let weak = XGfd::new(
            edge_pattern(),
            vec![],
            XRhs::Lit(XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(10))),
        );
        let weaker_with_premise = XGfd::new(
            edge_pattern(),
            vec![XLiteral::cmp_const(1, AttrId(1), CmpOp::Eq, Value::Int(1))],
            XRhs::Lit(XLiteral::cmp_const(0, AttrId(0), CmpOp::Ge, Value::Int(5))),
        );
        let unrelated = XGfd::new(
            Pattern::edge(l(5), l(6), l(7)),
            vec![],
            XRhs::Lit(XLiteral::cmp_const(0, AttrId(0), CmpOp::Le, Value::Int(3))),
        );
        let sigma = vec![strong.clone(), weak, weaker_with_premise, unrelated.clone()];
        let cover = xcover(&sigma);
        assert_eq!(cover.len(), 2);
        assert!(cover.contains(&strong));
        assert!(cover.contains(&unrelated));
        // The cover still implies everything dropped.
        for phi in &sigma {
            assert!(ximplies(&cover, phi));
        }
    }

    #[test]
    fn empty_sigma_implies_only_trivial() {
        let a = Term::new(0, AttrId(0));
        let b = Term::new(1, AttrId(0));
        let trivial = XGfd::new(
            edge_pattern(),
            vec![XLiteral::cmp_terms(a, CmpOp::Ge, b, 18)],
            XRhs::Lit(XLiteral::cmp_terms(a, CmpOp::Gt, b, 0)),
        );
        assert!(ximplies(&[], &trivial));
        let nontrivial = XGfd::new(
            edge_pattern(),
            vec![],
            XRhs::Lit(XLiteral::cmp_terms(a, CmpOp::Gt, b, 0)),
        );
        assert!(!ximplies(&[], &nontrivial));
    }
}
