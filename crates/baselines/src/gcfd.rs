//! `DisGCFD` — conditional functional dependencies with **path patterns**
//! \[16, 24\], the paper's CFD-for-graphs baseline (Fig. 5(d), Fig. 7).
//!
//! GCFDs are the special case of GFDs whose patterns are directed chains
//! (no cycles, no wildcards, no negative rules): \[24\] enumerates frequent
//! path structures and runs CFDMiner-style dependency discovery on each.
//! We reuse the match-table machinery of `gfd-core`, restricted to chain
//! patterns, so the comparison isolates exactly the expressiveness gap the
//! paper discusses.

use gfd_core::{mine_dependencies, DiscoveredGfd, DiscoveryConfig, LiteralCatalog, MatchTable};
use gfd_graph::{triple_stats, Graph, TripleStat};
use gfd_logic::{Gfd, Rhs};
use gfd_pattern::{find_all, PEdge, PLabel, Pattern};

/// GCFD mining parameters.
#[derive(Clone, Debug)]
pub struct GcfdConfig {
    /// Maximum chain length in nodes (`k`).
    pub k: usize,
    /// Support threshold (distinct chain-head pivots).
    pub sigma: usize,
    /// Maximum premises per dependency.
    pub max_lhs_size: usize,
    /// Frequent constants kept per attribute.
    pub values_per_attr: usize,
}

impl Default for GcfdConfig {
    fn default() -> Self {
        GcfdConfig {
            k: 3,
            sigma: 100,
            max_lhs_size: 2,
            values_per_attr: 5,
        }
    }
}

/// Enumerates frequent directed chains (as patterns) up to `k` nodes.
fn frequent_chains(triples: &[TripleStat], cfg: &GcfdConfig) -> Vec<Pattern> {
    let frequent: Vec<&TripleStat> = triples
        .iter()
        .filter(|t| (t.distinct_src as usize) >= cfg.sigma)
        .collect();
    let mut chains: Vec<Vec<&TripleStat>> = frequent.iter().map(|t| vec![*t]).collect();
    let mut out: Vec<Pattern> = Vec::new();
    while let Some(chain) = chains.pop() {
        out.push(chain_to_pattern(&chain));
        if chain.len() + 2 <= cfg.k {
            let tail = chain.last().unwrap().dst_label;
            for t in &frequent {
                if t.src_label == tail {
                    let mut longer = chain.clone();
                    longer.push(t);
                    chains.push(longer);
                }
            }
        }
    }
    out
}

fn chain_to_pattern(chain: &[&TripleStat]) -> Pattern {
    let mut nodes = vec![PLabel::Is(chain[0].src_label)];
    let mut edges = Vec::with_capacity(chain.len());
    for (i, t) in chain.iter().enumerate() {
        nodes.push(PLabel::Is(t.dst_label));
        edges.push(PEdge {
            src: i,
            dst: i + 1,
            label: PLabel::Is(t.edge_label),
        });
    }
    Pattern::new(nodes, edges, 0)
}

/// Mines GCFDs (path-pattern dependencies) from `g`.
pub fn mine_gcfds(g: &Graph, cfg: &GcfdConfig) -> Vec<DiscoveredGfd> {
    let triples = triple_stats(g);
    let attrs = DiscoveryConfig::new(cfg.k.max(2), cfg.sigma).resolve_active_attrs(g);
    let mut dcfg = DiscoveryConfig::new(cfg.k.max(2), cfg.sigma);
    dcfg.max_lhs_size = cfg.max_lhs_size;
    dcfg.values_per_attr = cfg.values_per_attr;
    dcfg.mine_negative = false; // CFDs have no negative form

    let mut out: Vec<DiscoveredGfd> = Vec::new();
    for q in frequent_chains(&triples, cfg) {
        let ms = find_all(&q, g);
        let support = gfd_core::distinct_pivots(&ms, q.pivot());
        if support < cfg.sigma {
            continue;
        }
        let table = MatchTable::build(&q, &ms, g, &attrs);
        let catalog =
            LiteralCatalog::harvest(&table, cfg.values_per_attr, cfg.sigma.min(ms.len().max(1)));
        let mut covered = Vec::new();
        let (deps, _) = mine_dependencies(&table, &catalog, &mut covered, &dcfg);
        for dep in deps {
            debug_assert!(dep.rhs != Rhs::False);
            let confidence = dep.confidence();
            out.push(DiscoveredGfd {
                gfd: Gfd::new(q.clone(), dep.lhs, dep.rhs),
                support: dep.support,
                level: q.edge_count(),
                confidence,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphBuilder;
    use gfd_logic::Literal;

    /// person --worksAt--> company --basedIn--> city, with dept → floor
    /// dependency on the chain head.
    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            let p = b.add_node("person");
            let c = b.add_node("company");
            let t = b.add_node("city");
            b.set_attr(p, "dept", if i % 2 == 0 { "sales" } else { "eng" });
            b.set_attr(p, "floor", if i % 2 == 0 { "1" } else { "2" });
            b.set_attr(c, "sector", "tech");
            b.add_edge(p, c, "worksAt");
            b.add_edge(c, t, "basedIn");
        }
        b.build()
    }

    fn cfg(sigma: usize) -> GcfdConfig {
        GcfdConfig {
            k: 3,
            sigma,
            max_lhs_size: 1,
            values_per_attr: 4,
        }
    }

    #[test]
    fn chains_enumerated_to_k() {
        let g = chain_graph();
        let triples = triple_stats(&g);
        let chains = frequent_chains(&triples, &cfg(10));
        // worksAt, basedIn, worksAt∘basedIn.
        assert_eq!(chains.len(), 3);
        assert!(chains.iter().all(|c| c.node_count() <= 3));
        assert!(chains.iter().all(|c| c.is_connected()));
    }

    #[test]
    fn mines_conditional_dependency() {
        let g = chain_graph();
        let rules = mine_gcfds(&g, &cfg(5));
        let dept = g.interner().lookup_attr("dept").unwrap();
        let floor = g.interner().lookup_attr("floor").unwrap();
        let sales = gfd_graph::Value::Str(g.interner().lookup_symbol("sales").unwrap());
        let one = gfd_graph::Value::Str(g.interner().lookup_symbol("1").unwrap());
        let found = rules.iter().any(|d| {
            d.gfd.lhs() == [Literal::constant(0, dept, sales)]
                && d.gfd.rhs() == Rhs::Lit(Literal::constant(0, floor, one))
        });
        assert!(found, "{} rules", rules.len());
    }

    #[test]
    fn no_negative_rules() {
        let g = chain_graph();
        let rules = mine_gcfds(&g, &cfg(5));
        assert!(rules.iter().all(|d| d.gfd.rhs() != Rhs::False));
        assert!(!rules.is_empty());
    }

    #[test]
    fn all_rules_hold_and_are_chains() {
        let g = chain_graph();
        for d in mine_gcfds(&g, &cfg(5)) {
            assert!(gfd_logic::satisfies(&g, &d.gfd));
            // Chain shape: every node has ≤1 outgoing pattern edge.
            let q = d.gfd.pattern();
            for v in 0..q.node_count() {
                assert!(q.out_degree(v) <= 1);
            }
        }
    }

    #[test]
    fn sigma_prunes_everything_when_high() {
        let g = chain_graph();
        assert!(mine_gcfds(&g, &cfg(1000)).is_empty());
    }
}
