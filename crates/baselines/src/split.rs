//! `ParArab` — the split pattern-mining-then-FD-discovery pipeline (§7).
//!
//! The paper's strawman baseline first mines *all* frequent patterns with
//! a generic pattern-mining system (Arabesque \[39\]) and only then attaches
//! literals to each pattern. Two structural handicaps follow, which this
//! implementation reproduces faithfully:
//!
//! 1. **no integration** — dependency knowledge from smaller patterns
//!    (the covered-set inheritance of `SeqDis`) is unavailable, so every
//!    pattern re-explores its full literal lattice;
//! 2. **full materialisation** — all frequent patterns and their match
//!    sets are held simultaneously between the two phases (the paper
//!    reports ParArab exhausting memory at the verification step).
//!
//! The report exposes the peak materialised rows so experiments can show
//! the blow-up without actually running out of memory.

use std::time::{Duration, Instant};

use gfd_core::{
    distinct_pivots, mine_dependencies, propose_extensions, DiscoveredGfd, DiscoveryConfig,
    LiteralCatalog, MatchTable,
};
use gfd_graph::Graph;
use gfd_logic::Gfd;
use gfd_pattern::{extend_matches, MatchSet, PLabel, Pattern, PatternRegistry};

/// Outcome of the split pipeline.
#[derive(Debug)]
pub struct SplitReport {
    /// The mined dependencies.
    pub rules: Vec<DiscoveredGfd>,
    /// Frequent patterns materialised by phase 1.
    pub patterns: usize,
    /// Peak match rows held simultaneously between the phases (the memory
    /// proxy; `SeqDis` only ever holds two levels).
    pub peak_rows: usize,
    /// Phase-1 (pattern mining) time.
    pub pattern_time: Duration,
    /// Phase-2 (dependency discovery) time.
    pub fd_time: Duration,
}

/// Runs the split pipeline.
pub fn split_pipeline(g: &Graph, cfg: &DiscoveryConfig) -> SplitReport {
    // ---- Phase 1: frequent-pattern mining, everything materialised ----
    let t0 = Instant::now();
    let mut registry = PatternRegistry::new();
    let mut store: Vec<(Pattern, MatchSet)> = Vec::new();

    let mut frontier: Vec<usize> = Vec::new();
    for (label, count) in g.node_label_frequencies() {
        if (count as usize) < cfg.sigma {
            continue;
        }
        let q = Pattern::single(PLabel::Is(label));
        let mut ms = MatchSet::new(1);
        for &n in g.nodes_with_label(label) {
            ms.push(&[n]);
        }
        registry.intern(&q);
        frontier.push(store.len());
        store.push((q, ms));
    }

    let mut level = 0usize;
    while !frontier.is_empty() && level < cfg.level_cap() {
        let mut next: Vec<usize> = Vec::new();
        for &idx in &frontier {
            let proposals = {
                let (q, ms) = &store[idx];
                propose_extensions(q, ms, g, cfg)
            };
            for (ext, _) in proposals.frequent {
                let child = store[idx].0.extend(&ext);
                let (_, fresh) = registry.intern(&child);
                if !fresh {
                    continue;
                }
                let child_ms = {
                    let (q, ms) = &store[idx];
                    extend_matches(q, ms, &ext, g)
                };
                if distinct_pivots(&child_ms, child.pivot()) < cfg.sigma {
                    continue;
                }
                if cfg.max_matches_per_pattern > 0 && child_ms.len() > cfg.max_matches_per_pattern {
                    continue;
                }
                next.push(store.len());
                store.push((child, child_ms));
            }
        }
        frontier = next;
        level += 1;
    }
    let pattern_time = t0.elapsed();
    let peak_rows: usize = store.iter().map(|(_, ms)| ms.len()).sum();
    let patterns = store.len();

    // ---- Phase 2: per-pattern dependency discovery, no inheritance ----
    let t1 = Instant::now();
    let attrs = cfg.resolve_active_attrs(g);
    let mut rules: Vec<DiscoveredGfd> = Vec::new();
    let mut fd_cfg = cfg.clone();
    fd_cfg.mine_negative = false; // generic pattern mining has no NVSpawn
    for (q, ms) in &store {
        let table = MatchTable::build(q, ms, g, &attrs);
        let catalog =
            LiteralCatalog::harvest(&table, cfg.values_per_attr, cfg.sigma.min(ms.len().max(1)));
        let mut covered = Vec::new(); // ← no cross-pattern pruning
        let (deps, _) = mine_dependencies(&table, &catalog, &mut covered, &fd_cfg);
        for dep in deps {
            let confidence = dep.confidence();
            rules.push(DiscoveredGfd {
                gfd: Gfd::new(q.clone(), dep.lhs, dep.rhs),
                support: dep.support,
                level: q.edge_count(),
                confidence,
            });
        }
    }
    let fd_time = t1.elapsed();

    SplitReport {
        rules,
        patterns,
        peak_rows,
        pattern_time,
        fd_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::seq_dis;
    use gfd_graph::GraphBuilder;

    #[allow(clippy::needless_range_loop)]
    fn kb() -> Graph {
        let mut b = GraphBuilder::new();
        let mut people = Vec::new();
        for i in 0..16 {
            let p = b.add_node("person");
            b.set_attr(p, "type", if i < 12 { "producer" } else { "actor" });
            people.push(p);
        }
        for i in 0..12 {
            let f = b.add_node("product");
            b.set_attr(f, "type", "film");
            b.add_edge(people[i], f, "create");
        }
        for w in people.windows(2) {
            b.add_edge(w[0], w[1], "knows");
        }
        b.build()
    }

    fn cfg() -> DiscoveryConfig {
        let mut c = DiscoveryConfig::new(3, 4);
        c.max_lhs_size = 1;
        c.wildcard_min_labels = 0;
        c.values_per_attr = 3;
        c
    }

    #[test]
    fn split_finds_the_positive_rules_of_seqdis() {
        let g = kb();
        let c = cfg();
        let split = split_pipeline(&g, &c);
        let seq = seq_dis(&g, &c);
        let split_set: Vec<String> = split
            .rules
            .iter()
            .map(|d| d.gfd.display(g.interner()))
            .collect();
        // Every positive rule SeqDis finds, the split pipeline also finds
        // (it lacks only negatives and minimality pruning).
        for d in seq.gfds.iter().filter(|d| d.gfd.is_positive()) {
            assert!(
                split_set.contains(&d.gfd.display(g.interner())),
                "missing: {}",
                d.gfd.display(g.interner())
            );
        }
    }

    #[test]
    fn split_materialises_more() {
        let g = kb();
        let c = cfg();
        let split = split_pipeline(&g, &c);
        assert!(split.patterns > 0);
        // Peak rows across *all* patterns at once (SeqDis never holds more
        // than two adjacent levels).
        assert!(split.peak_rows > g.node_count());
    }

    #[test]
    fn split_has_no_negatives_and_more_redundancy() {
        let g = kb();
        let c = cfg();
        let split = split_pipeline(&g, &c);
        assert!(split.rules.iter().all(|d| d.gfd.is_positive()));
        let seq = seq_dis(&g, &c);
        let seq_pos = seq.gfds.iter().filter(|d| d.gfd.is_positive()).count();
        // No covered-set inheritance ⇒ at least as many (usually more) rules.
        assert!(split.rules.len() >= seq_pos);
    }
}
