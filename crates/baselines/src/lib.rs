//! # gfd-baselines — the evaluation's comparison systems
//!
//! The three baselines of §7 of *Discovering Graph Functional
//! Dependencies* (Fan et al., SIGMOD 2018), built from scratch:
//!
//! * [`amie`] — `ParAMIE`: AMIE-style closed horn rules with head coverage
//!   and PCA confidence \[8, 22\]; no constants, wildcards, or negatives,
//! * [`gcfd`] — `DisGCFD`: conditional dependencies over path patterns
//!   \[16, 24\], a strict special case of GFDs,
//! * [`split`] — `ParArab`: pattern-mining-then-FD pipeline in the style
//!   of Arabesque \[39\], demonstrating the cost of not integrating the two
//!   processes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amie;
pub mod gcfd;
pub mod split;

pub use amie::{amie_violations, mine_amie, AmieConfig, Atom, HornRule};
pub use gcfd::{mine_gcfds, GcfdConfig};
pub use split::{split_pipeline, SplitReport};
