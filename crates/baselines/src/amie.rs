//! `ParAMIE` — an AMIE-style horn-rule miner \[8, 22\] used as the paper's
//! rule-mining baseline (Fig. 5(d), Fig. 6, Fig. 7).
//!
//! AMIE mines closed horn rules `B₁ ∧ … ∧ B_{n-1} ⇒ r(x, y)` over binary
//! edge predicates, scored by *head coverage* and *PCA confidence* (the
//! partial-completeness assumption: a missing `r(x, y')` only counts
//! against the rule if `x` has some `r`-edge). Per the paper's comparison,
//! this baseline supports neither constants, nor wildcards, nor negative
//! rules, nor isomorphism semantics — rules are evaluated under
//! homomorphism, as AMIE does.
//!
//! The search follows AMIE's operators: starting from a head atom, add a
//! **dangling** atom (one fresh variable) or a **closing** atom (two bound
//! variables), emitting rules that are closed (every variable occurs at
//! least twice). Mining parallelises over head relations.

use gfd_graph::{Edge, FxHashMap, FxHashSet, Graph, LabelId, NodeId};

/// A body/head atom `rel(vars[src], vars[dst])`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Edge predicate.
    pub rel: LabelId,
    /// Subject variable index.
    pub src: usize,
    /// Object variable index.
    pub dst: usize,
}

/// A mined horn rule with AMIE's quality measures.
#[derive(Clone, Debug)]
pub struct HornRule {
    /// The head `r(x, y)` (variables 0 and 1).
    pub head: Atom,
    /// Body atoms.
    pub body: Vec<Atom>,
    /// Number of variables.
    pub vars: usize,
    /// Distinct `(x, y)` pairs satisfying body ∧ head.
    pub support: usize,
    /// `support / |r|`.
    pub head_coverage: f64,
    /// `support / |{(x,y) : body ∧ ∃y'. r(x,y')}|`.
    pub pca_confidence: f64,
}

impl HornRule {
    /// Renders e.g. `r1(x0,x2) ∧ r2(x2,x1) => r0(x0,x1)`.
    pub fn display(&self, g: &Graph) -> String {
        let atom = |a: &Atom| format!("{}(x{},x{})", g.interner().label_name(a.rel), a.src, a.dst);
        let body = self.body.iter().map(atom).collect::<Vec<_>>().join(" ∧ ");
        format!("{} => {}", body, atom(&self.head))
    }
}

/// Mining parameters.
#[derive(Clone, Debug)]
pub struct AmieConfig {
    /// Maximum total atoms (head + body); AMIE's default is 3.
    pub max_atoms: usize,
    /// Minimum head coverage.
    pub min_head_coverage: f64,
    /// Minimum PCA confidence (the paper uses 0.5 in Fig. 6).
    pub min_pca_confidence: f64,
    /// Minimum absolute support.
    pub min_support: usize,
    /// Worker threads over head relations (1 = sequential).
    pub workers: usize,
}

impl Default for AmieConfig {
    fn default() -> Self {
        AmieConfig {
            max_atoms: 3,
            min_head_coverage: 0.01,
            min_pca_confidence: 0.5,
            min_support: 10,
            workers: 1,
        }
    }
}

/// Per-relation edge index used by the join evaluator.
struct RelIndex {
    by_rel: FxHashMap<LabelId, Vec<Edge>>,
    /// `(rel, src)` → has any out-edge (for the PCA denominator).
    out_by_src: FxHashMap<(LabelId, NodeId), bool>,
}

impl RelIndex {
    fn build(g: &Graph) -> RelIndex {
        let mut by_rel: FxHashMap<LabelId, Vec<Edge>> = FxHashMap::default();
        let mut out_by_src = FxHashMap::default();
        for e in g.edges() {
            by_rel.entry(e.label).or_default().push(*e);
            out_by_src.insert((e.label, e.src), true);
        }
        RelIndex { by_rel, out_by_src }
    }

    fn edges(&self, rel: LabelId) -> &[Edge] {
        self.by_rel.get(&rel).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Enumerates homomorphic bindings of `atoms` over `idx`, streaming each
/// complete assignment (indexed by variable) to `sink`; returns false if
/// the row cap was hit.
fn for_each_binding(
    idx: &RelIndex,
    atoms: &[Atom],
    vars: usize,
    cap: usize,
    sink: &mut dyn FnMut(&[Option<NodeId>]),
) -> bool {
    let mut assignment: Vec<Option<NodeId>> = vec![None; vars];
    let mut seen = 0usize;
    rec_bind(idx, atoms, 0, &mut assignment, &mut seen, cap, sink)
}

fn rec_bind(
    idx: &RelIndex,
    atoms: &[Atom],
    depth: usize,
    assignment: &mut Vec<Option<NodeId>>,
    seen: &mut usize,
    cap: usize,
    sink: &mut dyn FnMut(&[Option<NodeId>]),
) -> bool {
    if depth == atoms.len() {
        *seen += 1;
        sink(assignment);
        return *seen < cap;
    }
    let a = atoms[depth];
    for e in idx.edges(a.rel) {
        match (assignment[a.src], assignment[a.dst]) {
            (Some(s), Some(d)) => {
                if s != e.src || d != e.dst {
                    continue;
                }
                if !rec_bind(idx, atoms, depth + 1, assignment, seen, cap, sink) {
                    return false;
                }
            }
            (Some(s), None) => {
                if s != e.src {
                    continue;
                }
                assignment[a.dst] = Some(e.dst);
                let go = rec_bind(idx, atoms, depth + 1, assignment, seen, cap, sink);
                assignment[a.dst] = None;
                if !go {
                    return false;
                }
            }
            (None, Some(d)) => {
                if d != e.dst {
                    continue;
                }
                assignment[a.src] = Some(e.src);
                let go = rec_bind(idx, atoms, depth + 1, assignment, seen, cap, sink);
                assignment[a.src] = None;
                if !go {
                    return false;
                }
            }
            (None, None) => {
                assignment[a.src] = Some(e.src);
                assignment[a.dst] = Some(e.dst);
                let go = rec_bind(idx, atoms, depth + 1, assignment, seen, cap, sink);
                assignment[a.src] = None;
                assignment[a.dst] = None;
                if !go {
                    return false;
                }
            }
        }
    }
    true
}

const ROW_CAP: usize = 2_000_000;

/// Sound refinement pruning (AMIE's support-based pruning): whether the
/// body alone binds at least `threshold` distinct head pairs. Adding atoms
/// can only shrink this set, so sub-threshold bodies are dropped from both
/// scoring and refinement. Early-exits at `threshold`.
fn body_pairs_at_least(
    idx: &RelIndex,
    body: &[Atom],
    head: Atom,
    vars: usize,
    threshold: usize,
) -> bool {
    if body.is_empty() {
        return true;
    }
    // The pair bound is only valid once the body constrains both head
    // variables; otherwise refinement stays open.
    let mentions = |v: usize| body.iter().any(|a| a.src == v || a.dst == v);
    if !mentions(head.src) || !mentions(head.dst) {
        return true;
    }
    let mut pairs: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    let mut reached = false;
    for_each_binding(idx, body, vars, ROW_CAP, &mut |asg| {
        if let (Some(x), Some(y)) = (asg[head.src], asg[head.dst]) {
            pairs.insert((x, y));
            if pairs.len() >= threshold {
                reached = true;
            }
        }
    });
    reached || pairs.len() >= threshold
}

/// Scores `body ⇒ head` and returns `(support, pca_denominator)`.
fn score(idx: &RelIndex, g: &Graph, body: &[Atom], head: Atom, vars: usize) -> (usize, usize) {
    let mut support_pairs: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    let mut pca_pairs: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    for_each_binding(idx, body, vars, ROW_CAP, &mut |asg| {
        let (Some(x), Some(y)) = (asg[head.src], asg[head.dst]) else {
            return;
        };
        if g.has_edge(x, y, head.rel) {
            support_pairs.insert((x, y));
            pca_pairs.insert((x, y));
        } else if idx.out_by_src.contains_key(&(head.rel, x)) {
            // PCA: x is known to have r-successors, so (x,y) counts against.
            pca_pairs.insert((x, y));
        }
    });
    (support_pairs.len(), pca_pairs.len())
}

/// Whether every variable occurs at least twice (closed rule).
fn is_closed(body: &[Atom], head: Atom, vars: usize) -> bool {
    let mut count = vec![0usize; vars];
    for a in body.iter().chain(std::iter::once(&head)) {
        count[a.src] += 1;
        count[a.dst] += 1;
    }
    count.iter().all(|&c| c >= 2)
}

/// Canonical signature for rule de-duplication (body atom order is
/// irrelevant).
fn signature(body: &[Atom], head: Atom) -> Vec<(u32, usize, usize)> {
    let mut sig: Vec<(u32, usize, usize)> = body
        .iter()
        .chain(std::iter::once(&head))
        .map(|a| (a.rel.0, a.src, a.dst))
        .collect();
    sig.sort_unstable();
    sig
}

fn mine_head(g: &Graph, idx: &RelIndex, head_rel: LabelId, cfg: &AmieConfig) -> Vec<HornRule> {
    let head = Atom {
        rel: head_rel,
        src: 0,
        dst: 1,
    };
    let head_size = idx.edges(head_rel).len();
    if head_size == 0 {
        return Vec::new();
    }
    let rels: Vec<LabelId> = {
        let mut r: Vec<LabelId> = idx.by_rel.keys().copied().collect();
        r.sort_unstable();
        r
    };

    let mut out: Vec<HornRule> = Vec::new();
    let mut emitted: FxHashSet<Vec<(u32, usize, usize)>> = FxHashSet::default();
    // Frontier of (body, vars) partial rules.
    let mut frontier: Vec<(Vec<Atom>, usize)> = vec![(Vec::new(), 2)];

    while let Some((body, vars)) = frontier.pop() {
        // AMIE's support pruning: a body that cannot reach min_support is
        // neither scored nor refined (children only shrink the pair set).
        if !body.is_empty() && !body_pairs_at_least(idx, &body, head, vars, cfg.min_support) {
            continue;
        }
        // Generate refinements.
        if body.len() + 1 < cfg.max_atoms {
            for &rel in &rels {
                // Closing atoms over existing variables.
                for s in 0..vars {
                    for d in 0..vars {
                        if s == d {
                            continue;
                        }
                        let atom = Atom {
                            rel,
                            src: s,
                            dst: d,
                        };
                        if atom == head || body.contains(&atom) {
                            continue;
                        }
                        let mut nb = body.clone();
                        nb.push(atom);
                        frontier.push((nb, vars));
                    }
                }
                // Dangling atoms introducing one fresh variable.
                for v in 0..vars {
                    let mut nb1 = body.clone();
                    nb1.push(Atom {
                        rel,
                        src: v,
                        dst: vars,
                    });
                    frontier.push((nb1, vars + 1));
                    let mut nb2 = body.clone();
                    nb2.push(Atom {
                        rel,
                        src: vars,
                        dst: v,
                    });
                    frontier.push((nb2, vars + 1));
                }
            }
        }
        if body.is_empty() || !is_closed(&body, head, vars) {
            continue;
        }
        let sig = signature(&body, head);
        if !emitted.insert(sig) {
            continue;
        }
        let (support, pca_body) = score(idx, g, &body, head, vars);
        if support < cfg.min_support {
            continue;
        }
        let hc = support as f64 / head_size as f64;
        let pca = if pca_body == 0 {
            0.0
        } else {
            support as f64 / pca_body as f64
        };
        if hc >= cfg.min_head_coverage && pca >= cfg.min_pca_confidence {
            out.push(HornRule {
                head,
                body,
                vars,
                support,
                head_coverage: hc,
                pca_confidence: pca,
            });
        }
    }
    out
}

/// Mines horn rules over all edge relations of `g`.
pub fn mine_amie(g: &Graph, cfg: &AmieConfig) -> Vec<HornRule> {
    let idx = RelIndex::build(g);
    let mut rels: Vec<LabelId> = idx.by_rel.keys().copied().collect();
    rels.sort_unstable();

    let mut rules: Vec<HornRule> = if cfg.workers <= 1 {
        rels.iter()
            .flat_map(|&r| mine_head(g, &idx, r, cfg))
            .collect()
    } else {
        // Parallel over head relations, round-robin.
        let chunks: Vec<Vec<LabelId>> = (0..cfg.workers)
            .map(|w| {
                rels.iter()
                    .enumerate()
                    .filter(|(i, _)| i % cfg.workers == w)
                    .map(|(_, r)| *r)
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let idx = &idx;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .flat_map(|&r| mine_head(g, idx, r, cfg))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    };
    rules.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.display_key().cmp(&b.display_key()))
    });
    rules
}

impl HornRule {
    fn display_key(&self) -> Vec<(u32, usize, usize)> {
        signature(&self.body, self.head)
    }
}

/// Exp-5 detection: nodes `x`/`y` of body bindings whose predicted head
/// edge is missing under PCA — "the nodes that do not have the predicted
/// relation" (§7).
pub fn amie_violations(g: &Graph, rules: &[HornRule]) -> FxHashSet<NodeId> {
    let idx = RelIndex::build(g);
    let mut out: FxHashSet<NodeId> = FxHashSet::default();
    for rule in rules {
        for_each_binding(&idx, &rule.body, rule.vars, ROW_CAP, &mut |asg| {
            let (Some(x), Some(y)) = (asg[rule.head.src], asg[rule.head.dst]) else {
                return;
            };
            if !g.has_edge(x, y, rule.head.rel) && idx.out_by_src.contains_key(&(rule.head.rel, x))
            {
                out.insert(x);
                out.insert(y);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphBuilder;

    /// hasChild(x,y) ⇔ childOf(y,x) — a perfect inverse pair.
    fn inverse_graph(pairs: usize, broken: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..pairs {
            let p = b.add_node("person");
            let c = b.add_node("person");
            b.add_edge(p, c, "hasChild");
            if i >= broken {
                b.add_edge(c, p, "childOf");
            }
        }
        b.build()
    }

    #[test]
    fn finds_inverse_rule() {
        let g = inverse_graph(30, 0);
        let rules = mine_amie(
            &g,
            &AmieConfig {
                min_support: 5,
                ..Default::default()
            },
        );
        let has_child = g.interner().lookup_label("hasChild").unwrap();
        let child_of = g.interner().lookup_label("childOf").unwrap();
        let inverse = rules
            .iter()
            .find(|r| r.head.rel == child_of && r.body.len() == 1 && r.body[0].rel == has_child);
        assert!(inverse.is_some(), "rules: {:?}", rules.len());
        let r = inverse.unwrap();
        assert_eq!(r.support, 30);
        assert!((r.pca_confidence - 1.0).abs() < 1e-9);
        assert!((r.head_coverage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pca_confidence_counts_only_known_subjects() {
        // 20 complete pairs, 10 with the inverse missing entirely (those
        // children have no childOf edge at all → PCA ignores them).
        let g = inverse_graph(30, 10);
        let rules = mine_amie(
            &g,
            &AmieConfig {
                min_support: 5,
                min_pca_confidence: 0.9,
                ..Default::default()
            },
        );
        let child_of = g.interner().lookup_label("childOf").unwrap();
        let inverse = rules
            .iter()
            .find(|r| r.head.rel == child_of && r.body.len() == 1);
        assert!(
            inverse.is_some(),
            "PCA should forgive unknown subjects entirely"
        );
        assert!((inverse.unwrap().pca_confidence - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rules_are_closed() {
        let g = inverse_graph(20, 0);
        let rules = mine_amie(&g, &AmieConfig::default());
        for r in &rules {
            assert!(is_closed(&r.body, r.head, r.vars), "{}", r.display(&g));
        }
    }

    #[test]
    fn min_support_filters() {
        let g = inverse_graph(8, 0);
        let none = mine_amie(
            &g,
            &AmieConfig {
                min_support: 100,
                ..Default::default()
            },
        );
        assert!(none.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = inverse_graph(25, 5);
        let seq = mine_amie(
            &g,
            &AmieConfig {
                min_support: 3,
                workers: 1,
                ..Default::default()
            },
        );
        let par = mine_amie(
            &g,
            &AmieConfig {
                min_support: 3,
                workers: 3,
                ..Default::default()
            },
        );
        let key = |rs: &[HornRule]| {
            let mut v: Vec<String> = rs.iter().map(|r| r.display(&g)).collect();
            v.sort();
            v
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn violations_locate_broken_pairs() {
        let g = inverse_graph(30, 6);
        let rules = mine_amie(
            &g,
            &AmieConfig {
                min_support: 5,
                min_pca_confidence: 0.9,
                ..Default::default()
            },
        );
        let viols = amie_violations(&g, &rules);
        // The 6 broken pairs have hasChild but no childOf; under PCA the
        // child must be a known childOf-subject, which broken children are
        // not — so AMIE misses them all (exactly the paper's point about
        // OWA-based baselines).
        for v in &viols {
            assert!(v.index() < g.node_count());
        }
    }
}
