//! Property suite for the structure-of-arrays frozen graph.
//!
//! Three laws of the scale refactor, pinned on random inputs:
//!
//! 1. **CSR iterator equivalence** — every adjacency view of the frozen
//!    SoA CSR (`out_edges`/`in_edges`, neighbour slices, labelled
//!    sub-ranges, degrees, `edges_between`, label buckets, last-wins
//!    attributes) agrees with a naive edge-list model recomputed from the
//!    raw blueprint.
//! 2. **Chunk-split invariance** — feeding the text serialisation through
//!    [`ChunkedParser`] under *any* split of the input produces a graph
//!    bit-identical to the one-shot parse, including splits inside
//!    multi-byte UTF-8 attribute values (at char granularity — the byte
//!    tail is the loader's job) and inside `%`-escapes.
//! 3. **Round-trip** — `from_text(to_text(g))` re-serialises identically.

use gfd_graph::io::{from_text, to_text, ChunkedParser};
use gfd_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

const NODE_LABELS: usize = 4;
const EDGE_LABELS: usize = 3;
const ATTRS: usize = 3;

/// Raw blueprint: the naive model every CSR view is checked against.
#[derive(Clone, Debug)]
struct Proto {
    nodes: Vec<usize>,
    /// `(node, attr, value)` assignments in write order (last wins).
    attrs: Vec<(usize, usize, usize)>,
    edges: Vec<(usize, usize, usize)>,
}

fn proto_strategy() -> impl Strategy<Value = Proto> {
    (1usize..=8).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..NODE_LABELS, n..=n),
            prop::collection::vec((0usize..n, 0usize..ATTRS, 0usize..5), 0..=16),
            prop::collection::vec((0usize..n, 0usize..n, 0usize..EDGE_LABELS), 0..=20),
        )
            .prop_map(|(nodes, attrs, edges)| Proto {
                nodes,
                attrs,
                edges,
            })
    })
}

/// Values deliberately multi-byte ("β2" etc.) so serialisation and the
/// chunked parser see real UTF-8, and `v 0` contains a space so escapes
/// appear in the text format.
fn value_name(v: usize) -> String {
    if v == 0 {
        "v 0".to_string()
    } else {
        format!("β{v}")
    }
}

fn build(p: &Proto) -> Graph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = p
        .nodes
        .iter()
        .map(|&l| b.add_node(&format!("L{l}")))
        .collect();
    for &(n, a, v) in &p.attrs {
        b.set_attr(ids[n], &format!("a{a}"), value_name(v).as_str());
    }
    for &(s, d, l) in &p.edges {
        b.add_edge(ids[s], ids[d], &format!("r{l}"));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Law 1: every CSR adjacency view equals the naive edge-list model.
    #[test]
    fn csr_views_match_naive_model(p in proto_strategy()) {
        let g = build(&p);
        let interner = g.interner();
        prop_assert_eq!(g.node_count(), p.nodes.len());
        prop_assert_eq!(g.edge_count(), p.edges.len());
        prop_assert_eq!(g.size(), p.nodes.len() + p.edges.len());

        for (ni, &nl) in p.nodes.iter().enumerate() {
            let n = NodeId::from_index(ni);
            prop_assert_eq!(interner.label_name(g.node_label(n)), format!("L{nl}"));

            // Out/in edge sets (as multisets of (src, dst, label) triples).
            let mut naive_out: Vec<(usize, usize, usize)> = p
                .edges
                .iter()
                .filter(|&&(s, _, _)| s == ni)
                .copied()
                .collect();
            let mut naive_in: Vec<(usize, usize, usize)> = p
                .edges
                .iter()
                .filter(|&&(_, d, _)| d == ni)
                .copied()
                .collect();
            naive_out.sort_unstable();
            naive_in.sort_unstable();
            let resolve = |eids: &[gfd_graph::EdgeId]| -> Vec<(usize, usize, usize)> {
                let mut v: Vec<_> = eids
                    .iter()
                    .map(|&e| {
                        let e = g.edge(e);
                        let l: usize = interner.label_name(e.label)[1..].parse().unwrap();
                        (e.src.index(), e.dst.index(), l)
                    })
                    .collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(resolve(g.out_edges(n)), naive_out.clone());
            prop_assert_eq!(resolve(g.in_edges(n)), naive_in.clone());
            prop_assert_eq!(g.out_degree(n), naive_out.len());
            prop_assert_eq!(g.in_degree(n), naive_in.len());
            prop_assert_eq!(g.degree(n), naive_out.len() + naive_in.len());

            // Neighbour slices are positionally aligned with edge slices.
            for (k, &e) in g.out_edges(n).iter().enumerate() {
                prop_assert_eq!(g.out_nbrs(n)[k], g.edge(e).dst);
            }
            for (k, &e) in g.in_edges(n).iter().enumerate() {
                prop_assert_eq!(g.in_nbrs(n)[k], g.edge(e).src);
            }

            // Labelled sub-ranges are exactly the label-filtered views.
            for l in 0..EDGE_LABELS {
                let Some(lid) = interner.lookup_label(&format!("r{l}")) else {
                    continue;
                };
                let filt_out: Vec<_> = naive_out
                    .iter()
                    .filter(|&&(_, _, el)| el == l)
                    .copied()
                    .collect();
                prop_assert_eq!(resolve(g.out_edges_labeled(n, lid)), filt_out.clone());
                prop_assert_eq!(g.out_label_degree(n, lid), filt_out.len());
                let filt_in: Vec<_> = naive_in
                    .iter()
                    .filter(|&&(_, _, el)| el == l)
                    .copied()
                    .collect();
                prop_assert_eq!(resolve(g.in_edges_labeled(n, lid)), filt_in.clone());
                prop_assert_eq!(g.in_label_degree(n, lid), filt_in.len());
                // The fused (edges, nbrs) view agrees with itself.
                let (eids, nbrs) = g.out_adj_labeled(n, lid);
                prop_assert_eq!(eids.len(), nbrs.len());
                for (k, &e) in eids.iter().enumerate() {
                    prop_assert_eq!(nbrs[k], g.edge(e).dst);
                }
            }

            // Attributes resolve last-wins from the raw write log.
            let mut want: std::collections::BTreeMap<usize, usize> = Default::default();
            for &(an, a, v) in &p.attrs {
                if an == ni {
                    want.insert(a, v);
                }
            }
            let got: std::collections::BTreeMap<usize, String> = g
                .attrs(n)
                .iter()
                .map(|(a, v)| {
                    let ai: usize = interner.attr_name(*a)[1..].parse().unwrap();
                    (ai, v.display(interner))
                })
                .collect();
            prop_assert_eq!(got.len(), want.len());
            for (a, v) in want {
                prop_assert_eq!(got.get(&a), Some(&value_name(v)));
            }
        }

        // edges_between is the (src, dst)-filtered multiset.
        for s in 0..p.nodes.len() {
            for d in 0..p.nodes.len() {
                let naive = p.edges.iter().filter(|&&(a, b, _)| a == s && b == d).count();
                prop_assert_eq!(
                    g.edges_between(NodeId::from_index(s), NodeId::from_index(d)).len(),
                    naive
                );
            }
        }

        // Label buckets partition the node set.
        let mut seen = 0usize;
        for l in 0..NODE_LABELS {
            if let Some(lid) = interner.lookup_label(&format!("L{l}")) {
                let bucket = g.nodes_with_label(lid);
                for &n in bucket {
                    prop_assert_eq!(p.nodes[n.index()], l);
                }
                seen += bucket.len();
            }
        }
        prop_assert_eq!(seen, p.nodes.len());
    }

    /// Law 2: any char-boundary split of the text feeds to the same graph.
    #[test]
    fn chunked_parse_is_split_invariant(
        p in proto_strategy(),
        cuts in prop::collection::vec(0usize..10_000, 0..=6),
    ) {
        let g = build(&p);
        let text = to_text(&g);
        let want = to_text(&from_text(&text).expect("one-shot parse"));

        // Turn the random per-mille fractions into char-boundary offsets.
        let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
        let mut offsets: Vec<usize> = cuts
            .iter()
            .map(|&f| boundaries[f * boundaries.len() / 10_000])
            .collect();
        offsets.push(0);
        offsets.push(text.len());
        offsets.sort_unstable();
        offsets.dedup();

        let mut parser = ChunkedParser::new();
        for w in offsets.windows(2) {
            parser.feed(&text[w[0]..w[1]]).expect("chunk feed");
        }
        let split = parser.finish().expect("chunked parse");
        prop_assert_eq!(to_text(&split), want);
    }

    /// Law 3: one round-trip preserves content exactly (attribute *order*
    /// within a node may differ — it follows interner id assignment, which
    /// depends on first-appearance order — but not the attribute *set*),
    /// and a second round-trip is a bit-identical fixed point.
    #[test]
    fn text_round_trip(p in proto_strategy()) {
        let g = build(&p);
        let back = from_text(&to_text(&g)).expect("parse");
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());

        type NodeContent = Vec<Vec<(String, String)>>;
        type EdgeContent = Vec<(usize, usize, String)>;
        let content = |g: &Graph| -> (NodeContent, EdgeContent) {
            let i = g.interner();
            let nodes = g
                .nodes()
                .map(|n| {
                    let mut attrs: Vec<(String, String)> = g
                        .attrs(n)
                        .iter()
                        .map(|(a, v)| (i.attr_name(*a), v.display(i)))
                        .collect();
                    attrs.sort();
                    attrs.insert(0, ("label".into(), i.label_name(g.node_label(n))));
                    attrs
                })
                .collect();
            let edges = g
                .edges()
                .iter()
                .map(|e| (e.src.index(), e.dst.index(), i.label_name(e.label)))
                .collect();
            (nodes, edges)
        };
        prop_assert_eq!(content(&back), content(&g));

        let text = to_text(&back);
        let again = from_text(&text).expect("re-parse");
        prop_assert_eq!(to_text(&again), text);
    }
}
