//! Triple-file ingestion: building property graphs from
//! subject–predicate–object dumps.
//!
//! The paper's datasets (DBpedia, YAGO2, IMDB) ship as triple files. This
//! loader consumes the common whitespace-separated form
//!
//! ```text
//! subject predicate object
//! ```
//!
//! mapping *relational* triples to labelled edges and *attribute* triples
//! to node attributes:
//!
//! * predicates in [`TripleConfig::type_predicates`] (e.g. `rdf:type`,
//!   `isA`) set the subject's node label;
//! * predicates in [`TripleConfig::attribute_predicates`] — or, with
//!   [`TripleConfig::literal_objects_as_attributes`], any triple whose
//!   object is quoted or numeric — become node attributes;
//! * everything else becomes a directed edge `subject --predicate--> object`.
//!
//! Tokens may be quoted (`"San Francisco"`) to include whitespace.
//! Entities are created on first sight; labels assigned by a later type
//! triple override the fallback label retroactively via a two-pass build.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;
use crate::io::ParseError;
use crate::value::ValueSpec;

/// Loader configuration.
#[derive(Clone, Debug)]
pub struct TripleConfig {
    /// Predicates whose object is the subject's node label.
    pub type_predicates: Vec<String>,
    /// Predicates always treated as attributes.
    pub attribute_predicates: Vec<String>,
    /// Also treat triples with quoted/numeric objects as attributes.
    pub literal_objects_as_attributes: bool,
    /// Label for entities without a type triple.
    pub fallback_label: String,
}

impl Default for TripleConfig {
    fn default() -> Self {
        TripleConfig {
            type_predicates: vec!["type".into(), "rdf:type".into(), "isA".into()],
            attribute_predicates: Vec::new(),
            literal_objects_as_attributes: true,
            fallback_label: "entity".into(),
        }
    }
}

/// Splits a line into at most 3 tokens, honouring double quotes.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(3);
    let mut cur = String::new();
    let mut quoted = false;
    let mut any = false;
    for ch in line.chars() {
        match ch {
            '"' => {
                quoted = !quoted;
                any = true;
            }
            c if c.is_whitespace() && !quoted => {
                if any {
                    out.push(std::mem::take(&mut cur));
                    any = false;
                }
            }
            c => {
                cur.push(c);
                any = true;
            }
        }
    }
    if any {
        out.push(cur);
    }
    out
}

fn looks_literal(raw_line: &str, token: &str) -> bool {
    // Quoted in the raw line, or parses as a number.
    if raw_line.contains(&format!("\"{token}\"")) {
        return true;
    }
    token.parse::<i64>().is_ok() || token.parse::<f64>().is_ok()
}

/// Parses a triple dump into a property graph.
pub fn from_triples(text: &str, cfg: &TripleConfig) -> Result<Graph, ParseError> {
    // Pass 1: collect entities, labels, attributes, edges.
    let mut order: Vec<String> = Vec::new();
    let mut ids: FxHashMap<String, usize> = FxHashMap::default();
    let mut labels: FxHashMap<usize, String> = FxHashMap::default();
    let mut attrs: Vec<(usize, String, String)> = Vec::new();
    let mut edges: Vec<(usize, usize, String)> = Vec::new();
    let attr_set: FxHashSet<&str> = cfg
        .attribute_predicates
        .iter()
        .map(|s| s.as_str())
        .collect();
    let type_set: FxHashSet<&str> = cfg.type_predicates.iter().map(|s| s.as_str()).collect();

    let intern = |name: &str, order: &mut Vec<String>, ids: &mut FxHashMap<String, usize>| {
        if let Some(&i) = ids.get(name) {
            return i;
        }
        let i = order.len();
        order.push(name.to_owned());
        ids.insert(name.to_owned(), i);
        i
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(" .");
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = tokenize(line);
        if toks.len() != 3 {
            return Err(ParseError {
                line: lineno + 1,
                message: format!("expected 3 tokens, got {}", toks.len()),
            });
        }
        let (s, p, o) = (&toks[0], &toks[1], &toks[2]);
        let si = intern(s, &mut order, &mut ids);
        if type_set.contains(p.as_str()) {
            labels.insert(si, o.clone());
        } else if attr_set.contains(p.as_str())
            || (cfg.literal_objects_as_attributes && looks_literal(raw, o))
        {
            attrs.push((si, p.clone(), o.clone()));
        } else {
            let oi = intern(o, &mut order, &mut ids);
            edges.push((si, oi, p.clone()));
        }
    }

    // Pass 2: build with final labels.
    let mut b = GraphBuilder::new();
    for (i, _name) in order.iter().enumerate() {
        let label = labels
            .get(&i)
            .map(String::as_str)
            .unwrap_or(cfg.fallback_label.as_str());
        let n = b.add_node(label);
        debug_assert_eq!(n.index(), i);
    }
    // Keep the original identifier as an `iri` attribute for provenance.
    for (i, name) in order.iter().enumerate() {
        b.set_attr(NodeId::from_index(i), "iri", ValueSpec::Str(name));
    }
    for (n, attr, value) in &attrs {
        let spec = match value.parse::<i64>() {
            Ok(v) => ValueSpec::Int(v),
            Err(_) => ValueSpec::Str(value),
        };
        b.set_attr(NodeId::from_index(*n), attr, spec);
    }
    for (s, o, p) in &edges {
        b.add_edge(NodeId::from_index(*s), NodeId::from_index(*o), p);
    }
    Ok(b.build())
}

/// Loads a triple file from disk.
pub fn load_triples(path: &std::path::Path, cfg: &TripleConfig) -> std::io::Result<Graph> {
    let text = std::fs::read_to_string(path)?;
    from_triples(&text, cfg).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    const SAMPLE: &str = r#"
# a YAGO-flavoured snippet
John type person
Selling_Out type product
John create Selling_Out
Selling_Out label "Selling Out"
John age 34
Jack type person
Jack create Selling_Out
"#;

    #[test]
    fn builds_nodes_edges_attributes() {
        let g = from_triples(SAMPLE, &TripleConfig::default()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let i = g.interner();
        let person = i.lookup_label("person").unwrap();
        assert_eq!(g.nodes_with_label(person).len(), 2);
        let create = i.lookup_label("create").unwrap();
        assert!(g.has_edge(NodeId(0), NodeId(1), create));
        // Quoted and numeric objects become attributes.
        let label_attr = i.lookup_attr("label").unwrap();
        assert_eq!(
            g.attr(NodeId(1), label_attr),
            Some(Value::Str(i.lookup_symbol("Selling Out").unwrap()))
        );
        let age = i.lookup_attr("age").unwrap();
        assert_eq!(g.attr(NodeId(0), age), Some(Value::Int(34)));
        // Provenance attribute.
        let iri = i.lookup_attr("iri").unwrap();
        assert_eq!(
            g.attr(NodeId(0), iri),
            Some(Value::Str(i.lookup_symbol("John").unwrap()))
        );
    }

    #[test]
    fn untyped_entities_get_fallback_label() {
        let g = from_triples("a knows b\n", &TripleConfig::default()).unwrap();
        let ent = g.interner().lookup_label("entity").unwrap();
        assert_eq!(g.nodes_with_label(ent).len(), 2);
    }

    #[test]
    fn explicit_attribute_predicates() {
        let cfg = TripleConfig {
            attribute_predicates: vec!["name".into()],
            literal_objects_as_attributes: false,
            ..Default::default()
        };
        let g = from_triples("x name paris\nx near lyon\n", &cfg).unwrap();
        // `name` is an attribute, `near` is an edge.
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let name = g.interner().lookup_attr("name").unwrap();
        assert!(g.attr(NodeId(0), name).is_some());
    }

    #[test]
    fn quoted_multiword_tokens() {
        let g = from_triples(
            "\"Saint Petersburg\" type city\n\"Saint Petersburg\" located Russia\n",
            &TripleConfig::default(),
        )
        .unwrap();
        assert_eq!(g.node_count(), 2);
        let iri = g.interner().lookup_attr("iri").unwrap();
        assert_eq!(
            g.attr(NodeId(0), iri),
            Some(Value::Str(
                g.interner().lookup_symbol("Saint Petersburg").unwrap()
            ))
        );
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = from_triples("a b\n", &TripleConfig::default()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("3 tokens"));
        let err = from_triples("ok type t\nx y z extra\n", &TripleConfig::default()).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn trailing_dot_and_comments_ignored() {
        let g = from_triples("# c\na likes b .\n\n", &TripleConfig::default()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
