//! A small, fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The discovery algorithms hash millions of small keys (node ids, label
//! triples, canonical pattern codes). SipHash — the standard-library default —
//! is measurably slow for such keys, so we ship a compact implementation of
//! the multiply-rotate scheme popularised by `rustc` ("FxHash") rather than
//! pulling in an extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths zero-pad to the same final word here; the hasher is
        // not length-prefixed (keys in this workspace are fixed-width).
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn set_operations() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        s.insert((2, 1));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(3, 3)));
    }
}
