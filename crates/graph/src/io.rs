//! Plain-text graph serialisation.
//!
//! A deliberately simple line format so that datasets and discovered rules
//! can be inspected, diffed, and checked into experiment records:
//!
//! ```text
//! # comment
//! n <label> [<attr>=<value>]...      # nodes are numbered in file order
//! e <src> <dst> <label>
//! ```
//!
//! Values are typed by sniffing: an optional minus sign followed by digits
//! parses as an integer, anything else is a string. Labels, attribute names
//! and string values are percent-escaped so they may contain whitespace,
//! `=`, `#`, or `%`.

use std::fmt::Write as _;
use std::path::Path;

use crate::graph::{Graph, GraphBuilder};
use crate::value::ValueSpec;

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '=' => out.push_str("%3D"),
            '#' => out.push_str("%23"),
            '%' => out.push_str("%25"),
            c => out.push(c),
        }
    }
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated escape".to_string())?;
            let code = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
            out.push(code as char);
            i += 3;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Ok(out)
}

fn sniff(s: &str) -> ValueSpec<'_> {
    let body = s.strip_prefix('-').unwrap_or(s);
    if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(i) = s.parse::<i64>() {
            return ValueSpec::Int(i);
        }
    }
    ValueSpec::Str(s)
}

/// Serialises `g` to the text format.
pub fn to_text(g: &Graph) -> String {
    let mut out = String::with_capacity(32 * g.size());
    let interner = g.interner();
    out.push_str("# gfd graph v1\n");
    for n in g.nodes() {
        out.push_str("n ");
        escape(&interner.label_name(g.node_label(n)), &mut out);
        for (a, v) in g.attrs(n) {
            out.push(' ');
            escape(&interner.attr_name(*a), &mut out);
            out.push('=');
            escape(&v.display(interner), &mut out);
        }
        out.push('\n');
    }
    for e in g.edges() {
        let _ = write!(out, "e {} {} ", e.src.index(), e.dst.index());
        escape(&interner.label_name(e.label), &mut out);
        out.push('\n');
    }
    out
}

/// Parses a graph from the text format.
pub fn from_text(text: &str) -> Result<Graph, ParseError> {
    let mut b = GraphBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("n") => {
                let label = parts
                    .next()
                    .ok_or_else(|| err("node line missing label".into()))?;
                let label = unescape(label).map_err(&err)?;
                let node = b.add_node(&label);
                for kv in parts {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("bad attribute `{kv}`")))?;
                    let k = unescape(k).map_err(&err)?;
                    let v = unescape(v).map_err(&err)?;
                    b.set_attr(node, &k, sniff(&v));
                }
            }
            Some("e") => {
                let src: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("edge line missing src".into()))?;
                let dst: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("edge line missing dst".into()))?;
                let label = parts
                    .next()
                    .ok_or_else(|| err("edge line missing label".into()))?;
                let label = unescape(label).map_err(&err)?;
                if src >= b.node_count() || dst >= b.node_count() {
                    return Err(err(format!("edge {src}->{dst} references unknown node")));
                }
                b.add_edge(
                    crate::ids::NodeId::from_index(src),
                    crate::ids::NodeId::from_index(dst),
                    &label,
                );
            }
            Some(other) => return Err(err(format!("unknown record `{other}`"))),
            None => unreachable!("blank lines filtered above"),
        }
    }
    Ok(b.build())
}

/// Writes `g` to `path` in the text format.
pub fn save(g: &Graph, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(g))
}

/// Loads a graph from `path`.
pub fn load(path: &Path) -> std::io::Result<Graph> {
    let text = std::fs::read_to_string(path)?;
    from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::NodeId;
    use crate::value::Value;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("person");
        let y = b.add_node("pro duct"); // space in label exercises escaping
        b.set_attr(x, "name", "John Winter");
        b.set_attr(x, "age", 42i64);
        b.set_attr(y, "type", "film=good"); // `=` in value
        b.add_edge(x, y, "create");
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let text = to_text(&g);
        let h = from_text(&text).expect("parse");
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        let name = h.interner().lookup_attr("name").unwrap();
        let john = h.interner().lookup_symbol("John Winter").unwrap();
        assert_eq!(h.attr(NodeId(0), name), Some(Value::Str(john)));
        let age = h.interner().lookup_attr("age").unwrap();
        assert_eq!(h.attr(NodeId(0), age), Some(Value::Int(42)));
        let ty = h.interner().lookup_attr("type").unwrap();
        let v = h.interner().lookup_symbol("film=good").unwrap();
        assert_eq!(h.attr(NodeId(1), ty), Some(Value::Str(v)));
        assert!(h.interner().lookup_label("pro duct").is_some());
    }

    #[test]
    fn integers_sniffed_strings_kept() {
        let g = from_text("n t x=5 y=-3 z=5a w=--2\n").unwrap();
        let i = g.interner();
        let x = i.lookup_attr("x").unwrap();
        let y = i.lookup_attr("y").unwrap();
        let z = i.lookup_attr("z").unwrap();
        let w = i.lookup_attr("w").unwrap();
        assert_eq!(g.attr(NodeId(0), x), Some(Value::Int(5)));
        assert_eq!(g.attr(NodeId(0), y), Some(Value::Int(-3)));
        assert!(matches!(g.attr(NodeId(0), z), Some(Value::Str(_))));
        assert!(matches!(g.attr(NodeId(0), w), Some(Value::Str(_))));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = from_text("# header\n\nn a\nn b\n# mid\ne 0 1 r\n").unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("n a\nq zzz\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_text("n a\ne 0 5 r\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown node"));
        let err = from_text("e 0\n").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("gfd-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.graph");
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        assert_eq!(h.size(), g.size());
        std::fs::remove_file(&path).ok();
    }
}
