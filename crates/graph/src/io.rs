//! Plain-text graph serialisation.
//!
//! A deliberately simple line format so that datasets and discovered rules
//! can be inspected, diffed, and checked into experiment records:
//!
//! ```text
//! # comment
//! n <label> [<attr>=<value>]...      # nodes are numbered in file order
//! e <src> <dst> <label>
//! ```
//!
//! Values are typed by sniffing: an optional minus sign followed by digits
//! parses as an integer, anything else is a string. Labels, attribute names
//! and string values are percent-escaped so they may contain whitespace,
//! `=`, `#`, or `%`.

use std::fmt::Write as _;
use std::path::Path;

use crate::graph::{Graph, GraphBuilder};
use crate::value::ValueSpec;

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '=' => out.push_str("%3D"),
            '#' => out.push_str("%23"),
            '%' => out.push_str("%25"),
            c => out.push(c),
        }
    }
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    // Copy between escapes str-wise (not byte-wise): tokens may contain
    // multi-byte UTF-8, which per-byte `as char` casts would mangle.
    while let Some(i) = rest.find('%') {
        out.push_str(&rest[..i]);
        let hex = rest
            .get(i + 1..i + 3)
            .ok_or_else(|| "truncated escape".to_string())?;
        let code = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
        out.push(code as char);
        rest = &rest[i + 3..];
    }
    out.push_str(rest);
    Ok(out)
}

fn sniff(s: &str) -> ValueSpec<'_> {
    let body = s.strip_prefix('-').unwrap_or(s);
    if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(i) = s.parse::<i64>() {
            return ValueSpec::Int(i);
        }
    }
    ValueSpec::Str(s)
}

/// Serialises `g` to the text format.
pub fn to_text(g: &Graph) -> String {
    let mut out = String::with_capacity(32 * g.size());
    let interner = g.interner();
    out.push_str("# gfd graph v1\n");
    for n in g.nodes() {
        out.push_str("n ");
        escape(&interner.label_name(g.node_label(n)), &mut out);
        for (a, v) in g.attrs(n) {
            out.push(' ');
            escape(&interner.attr_name(*a), &mut out);
            out.push('=');
            escape(&v.display(interner), &mut out);
        }
        out.push('\n');
    }
    for e in g.edges() {
        let _ = write!(out, "e {} {} ", e.src.index(), e.dst.index());
        escape(&interner.label_name(e.label), &mut out);
        out.push('\n');
    }
    out
}

/// Parses one non-blank, non-comment record line into `b`.
fn parse_line(b: &mut GraphBuilder, line: &str, lineno: usize) -> Result<(), ParseError> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let mut parts = line.split_ascii_whitespace();
    match parts.next() {
        Some("n") => {
            let label = parts
                .next()
                .ok_or_else(|| err("node line missing label".into()))?;
            let label = unescape(label).map_err(&err)?;
            let node = b.add_node(&label);
            for kv in parts {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| err(format!("bad attribute `{kv}`")))?;
                let k = unescape(k).map_err(&err)?;
                let v = unescape(v).map_err(&err)?;
                b.set_attr(node, &k, sniff(&v));
            }
        }
        Some("e") => {
            let src: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("edge line missing src".into()))?;
            let dst: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("edge line missing dst".into()))?;
            let label = parts
                .next()
                .ok_or_else(|| err("edge line missing label".into()))?;
            let label = unescape(label).map_err(&err)?;
            if src >= b.node_count() || dst >= b.node_count() {
                return Err(err(format!("edge {src}->{dst} references unknown node")));
            }
            b.add_edge(
                crate::ids::NodeId::from_index(src),
                crate::ids::NodeId::from_index(dst),
                &label,
            );
        }
        Some(other) => return Err(err(format!("unknown record `{other}`"))),
        None => unreachable!("blank lines filtered by callers"),
    }
    Ok(())
}

/// Incremental parser for the text format: feed the input in arbitrary
/// chunks — chunk boundaries may fall mid-line or mid-escape — and every
/// split of the same text produces the identical frozen graph.
///
/// Memory is bounded by one line: only the trailing partial line of the
/// previous chunk is carried between `feed` calls; complete lines stream
/// straight into the [`GraphBuilder`].
pub struct ChunkedParser {
    b: GraphBuilder,
    carry: String,
    lineno: usize,
}

impl Default for ChunkedParser {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkedParser {
    /// A parser building into an empty, unreserved builder.
    pub fn new() -> ChunkedParser {
        ChunkedParser {
            b: GraphBuilder::new(),
            carry: String::new(),
            lineno: 0,
        }
    }

    /// A parser whose builder is pre-reserved for `nodes`/`edges`/`attrs`
    /// records, so a sized load appends without reallocating.
    pub fn with_capacity(nodes: usize, edges: usize, attrs: usize) -> ChunkedParser {
        ChunkedParser {
            b: GraphBuilder::with_capacity(nodes, edges, attrs),
            carry: String::new(),
            lineno: 0,
        }
    }

    fn line(&mut self, line: &str) -> Result<(), ParseError> {
        self.lineno += 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        parse_line(&mut self.b, line, self.lineno)
    }

    /// Consumes the next chunk of input.
    pub fn feed(&mut self, mut chunk: &str) -> Result<(), ParseError> {
        // Complete the carried partial line first.
        if !self.carry.is_empty() {
            match chunk.find('\n') {
                None => {
                    self.carry.push_str(chunk);
                    return Ok(());
                }
                Some(i) => {
                    self.carry.push_str(&chunk[..i]);
                    let line = std::mem::take(&mut self.carry);
                    self.line(&line)?;
                    chunk = &chunk[i + 1..];
                }
            }
        }
        // Stream the complete lines; the trailing fragment becomes carry.
        while let Some(i) = chunk.find('\n') {
            // Borrow-split keeps this zero-copy for full lines.
            let (line, rest) = chunk.split_at(i);
            self.line(line)?;
            chunk = &rest[1..];
        }
        self.carry.push_str(chunk);
        Ok(())
    }

    /// Flushes a final unterminated line and freezes the graph.
    pub fn finish(mut self) -> Result<Graph, ParseError> {
        if !self.carry.is_empty() {
            let line = std::mem::take(&mut self.carry);
            self.line(&line)?;
        }
        Ok(self.b.build())
    }
}

/// Parses a graph from the text format.
pub fn from_text(text: &str) -> Result<Graph, ParseError> {
    let mut p = ChunkedParser::new();
    p.feed(text)?;
    p.finish()
}

/// Record counts from a sizing pass over the text format, used to
/// pre-reserve the builder so the build pass never reallocates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TextSizing {
    /// `n` records seen.
    pub nodes: usize,
    /// `e` records seen.
    pub edges: usize,
    /// Attribute assignments across all `n` records.
    pub attrs: usize,
}

/// Counts records without building anything; memory is bounded by one
/// line (the read buffer is reused across lines).
pub fn sizing_pass<R: std::io::BufRead>(mut r: R) -> std::io::Result<TextSizing> {
    let mut sizing = TextSizing::default();
    let mut buf = String::new();
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            return Ok(sizing);
        }
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("n") => {
                sizing.nodes += 1;
                // Tokens after the label are `attr=value` pairs.
                sizing.attrs += parts.count().saturating_sub(1);
            }
            Some("e") => sizing.edges += 1,
            _ => {} // malformed lines are diagnosed by the build pass
        }
    }
}

/// Default chunk size for [`load_streamed`].
pub const STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// Loads a graph from `path` in two bounded-memory passes: a sizing pass
/// counts records, then the build pass streams fixed-size chunks through a
/// [`ChunkedParser`] whose builder is pre-reserved from the sizing — the
/// file is never resident as one string and the builder never reallocates.
pub fn load_streamed(path: &Path) -> std::io::Result<Graph> {
    load_chunked(path, STREAM_CHUNK_BYTES)
}

/// [`load_streamed`] with an explicit chunk size (any size ≥ 8 yields the
/// identical graph; tiny sizes exist for the invariance tests).
pub fn load_chunked(path: &Path, chunk_bytes: usize) -> std::io::Result<Graph> {
    use std::io::Read;
    let sizing = sizing_pass(std::io::BufReader::new(std::fs::File::open(path)?))?;
    let mut p = ChunkedParser::with_capacity(sizing.nodes, sizing.edges, sizing.attrs);
    let mut f = std::fs::File::open(path)?;
    // `tail` carries bytes of a UTF-8 sequence split by the chunk edge
    // (at most 3), so `valid` below is always a char boundary.
    let mut buf = vec![0u8; chunk_bytes.max(8)];
    let mut tail = 0usize;
    loop {
        let n = f.read(&mut buf[tail..])?;
        if n == 0 {
            break;
        }
        let filled = tail + n;
        let valid = match std::str::from_utf8(&buf[..filled]) {
            Ok(s) => s.len(),
            Err(e) => e.valid_up_to(),
        };
        let chunk = std::str::from_utf8(&buf[..valid])
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        p.feed(chunk)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        buf.copy_within(valid..filled, 0);
        tail = filled - valid;
        if tail >= 4 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "invalid UTF-8 in graph text",
            ));
        }
    }
    if tail != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "truncated UTF-8 at end of graph text",
        ));
    }
    p.finish()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes `g` to `path` in the text format.
pub fn save(g: &Graph, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(g))
}

/// Loads a graph from `path` (streaming; see [`load_streamed`]).
pub fn load(path: &Path) -> std::io::Result<Graph> {
    load_streamed(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::NodeId;
    use crate::value::Value;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("person");
        let y = b.add_node("pro duct"); // space in label exercises escaping
        b.set_attr(x, "name", "John Winter");
        b.set_attr(x, "age", 42i64);
        b.set_attr(y, "type", "film=good"); // `=` in value
        b.add_edge(x, y, "create");
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let text = to_text(&g);
        let h = from_text(&text).expect("parse");
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        let name = h.interner().lookup_attr("name").unwrap();
        let john = h.interner().lookup_symbol("John Winter").unwrap();
        assert_eq!(h.attr(NodeId(0), name), Some(Value::Str(john)));
        let age = h.interner().lookup_attr("age").unwrap();
        assert_eq!(h.attr(NodeId(0), age), Some(Value::Int(42)));
        let ty = h.interner().lookup_attr("type").unwrap();
        let v = h.interner().lookup_symbol("film=good").unwrap();
        assert_eq!(h.attr(NodeId(1), ty), Some(Value::Str(v)));
        assert!(h.interner().lookup_label("pro duct").is_some());
    }

    #[test]
    fn integers_sniffed_strings_kept() {
        let g = from_text("n t x=5 y=-3 z=5a w=--2\n").unwrap();
        let i = g.interner();
        let x = i.lookup_attr("x").unwrap();
        let y = i.lookup_attr("y").unwrap();
        let z = i.lookup_attr("z").unwrap();
        let w = i.lookup_attr("w").unwrap();
        assert_eq!(g.attr(NodeId(0), x), Some(Value::Int(5)));
        assert_eq!(g.attr(NodeId(0), y), Some(Value::Int(-3)));
        assert!(matches!(g.attr(NodeId(0), z), Some(Value::Str(_))));
        assert!(matches!(g.attr(NodeId(0), w), Some(Value::Str(_))));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = from_text("# header\n\nn a\nn b\n# mid\ne 0 1 r\n").unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("n a\nq zzz\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_text("n a\ne 0 5 r\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown node"));
        let err = from_text("e 0\n").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    /// A graph big enough that an unreserved builder would reallocate.
    fn bigger() -> Graph {
        let mut b = GraphBuilder::new();
        let mut nodes = Vec::new();
        for i in 0..300 {
            let n = b.add_node(["person", "product", "city"][i % 3]);
            b.set_attr(n, "rank", i as i64);
            if i % 2 == 0 {
                b.set_attr(n, "tag", ["hot", "cold"][i % 4 / 2]);
            }
            nodes.push(n);
        }
        for i in 0..600 {
            b.add_edge(nodes[i % 300], nodes[(i * 7 + 1) % 300], "link");
        }
        b.build()
    }

    #[test]
    fn chunk_split_invariance() {
        let g = bigger();
        let text = to_text(&g);
        let whole = to_text(&from_text(&text).unwrap());
        for chunk in [1usize, 2, 3, 5, 17, 64, 1000, usize::MAX] {
            let mut p = ChunkedParser::new();
            let mut rest = text.as_str();
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                // Stay on a char boundary (the text here is ASCII, but
                // keep the loop honest).
                let take = (take..=rest.len())
                    .find(|&i| rest.is_char_boundary(i))
                    .unwrap();
                p.feed(&rest[..take]).unwrap();
                rest = &rest[take..];
            }
            let h = p.finish().unwrap();
            assert_eq!(to_text(&h), whole, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn sizing_pass_counts_records() {
        let g = bigger();
        let text = to_text(&g);
        let s = sizing_pass(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(s.nodes, 300);
        assert_eq!(s.edges, 600);
        assert_eq!(s.attrs, 300 + 150);
    }

    #[test]
    fn streamed_load_is_preallocated_and_identical() {
        let g = bigger();
        let dir = std::env::temp_dir().join("gfd-io-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.graph");
        save(&g, &path).unwrap();
        for chunk in [7usize, 256, STREAM_CHUNK_BYTES] {
            let h = load_chunked(&path, chunk).unwrap();
            assert_eq!(to_text(&h), to_text(&g), "chunk {chunk}");
            assert_eq!(
                h.build_stats().builder_reallocs,
                0,
                "sized load must not reallocate (chunk {chunk})"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_survive_chunking() {
        let text = "n a\ne 0 5 r\n";
        for chunk in [1usize, 4, 100] {
            let mut p = ChunkedParser::new();
            let mut rest = text;
            let mut failed = None;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                if let Err(e) = p.feed(&rest[..take]) {
                    failed = Some(e);
                    break;
                }
                rest = &rest[take..];
            }
            let err = match failed {
                Some(e) => e,
                None => p.finish().unwrap_err(),
            };
            assert_eq!(err.line, 2, "chunk {chunk}");
            assert!(err.message.contains("unknown node"));
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("gfd-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.graph");
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        assert_eq!(h.size(), g.size());
        std::fs::remove_file(&path).ok();
    }
}
