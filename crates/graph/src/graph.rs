//! The property-graph model `G = (V, E, L, F_A)` of the paper (§2.1).
//!
//! Nodes and edges carry labels from one alphabet `Θ`; each node carries an
//! attribute tuple `F_A(v) = (A_1 = a_1, …, A_n = a_n)`. The paper defines
//! `E ⊆ V × V`; we generalise to labelled multi-edges because real knowledge
//! bases relate the same entity pair through several predicates — a pattern
//! match maps distinct pattern edges to distinct graph edges (see
//! `gfd-pattern`), which coincides with the paper's semantics on simple
//! graphs.
//!
//! Graphs are built with [`GraphBuilder`] and then frozen into an immutable
//! [`Graph`]. The frozen layout is **structure-of-arrays CSR** throughout:
//! every index is one offsets array plus packed flat payload arrays (edge
//! ids, neighbour ids, attribute tuples, per-label node lists) — no
//! per-node `Vec`s anywhere, so a million-node graph is a handful of large
//! allocations and every hot-path walk is a contiguous slice scan. All hot
//! paths work on compact ids; strings live in a shared [`Interner`].

use std::sync::Arc;

use crate::fxhash::FxHashMap;
use crate::ids::{AttrId, EdgeId, LabelId, NodeId};
use crate::interner::Interner;
use crate::value::{Value, ValueSpec};

/// A directed, labelled edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge label `L(e)`.
    pub label: LabelId,
}

/// Plain CSR adjacency: one offsets array plus packed edge-id,
/// neighbour-id and edge-label arrays (parallel, all sorted by
/// `(neighbour, label)` per node). The packed neighbour array lets
/// `edges_between` binary-search without dereferencing the edge table, and
/// the packed label array serves the per-pair label walks the harvest
/// performs on the resulting slice.
#[derive(Clone, Debug, Default)]
struct Csr {
    offsets: Vec<u32>,
    list: Vec<EdgeId>,
    nbrs: Vec<NodeId>,
    labels: Vec<LabelId>,
}

impl Csr {
    fn build(
        n: usize,
        edges: &[Edge],
        endpoint: impl Fn(&Edge) -> NodeId,
        neighbour: impl Fn(&Edge) -> NodeId,
    ) -> Csr {
        let mut counts = vec![0u32; n + 1];
        for e in edges {
            counts[endpoint(e).index() + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut list = vec![EdgeId(0); edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let slot = &mut cursor[endpoint(e).index()];
            list[*slot as usize] = EdgeId::from_index(i);
            *slot += 1;
        }
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            list[lo..hi].sort_unstable_by_key(|&eid| {
                let e = &edges[eid.index()];
                (neighbour(e), e.label)
            });
        }
        let nbrs = list.iter().map(|&e| neighbour(&edges[e.index()])).collect();
        let labels = list.iter().map(|&e| edges[e.index()].label).collect();
        Csr {
            offsets,
            list,
            nbrs,
            labels,
        }
    }

    #[inline]
    fn bounds(&self, n: NodeId) -> (usize, usize) {
        (
            self.offsets[n.index()] as usize,
            self.offsets[n.index() + 1] as usize,
        )
    }

    #[inline]
    fn slice(&self, n: NodeId) -> &[EdgeId] {
        let (lo, hi) = self.bounds(n);
        &self.list[lo..hi]
    }

    #[inline]
    fn nbr_slice(&self, n: NodeId) -> &[NodeId] {
        let (lo, hi) = self.bounds(n);
        &self.nbrs[lo..hi]
    }
}

/// One contiguous run of a node's adjacency holding every incident edge
/// with a single label (`lo..hi` indexes into the owning [`LabelCsr`]'s
/// packed arrays).
#[derive(Clone, Copy, Debug)]
struct LabelRange {
    label: LabelId,
    lo: u32,
    hi: u32,
}

/// Label-partitioned CSR adjacency in structure-of-arrays form: per node,
/// incident edge ids sorted by `(label, neighbour, edge id)` in one packed
/// array, the corresponding neighbour ids in a parallel packed array, plus
/// a per-node index of the contiguous range occupied by each distinct
/// label. An anchor step with a concrete edge label binary-searches the
/// (small) per-node label index and walks a contiguous neighbour slice —
/// no per-entry edge-table dereference.
///
/// The per-node `ranges` double as the node's **neighbour-label-frequency
/// (NLF) summary**: `degree(n, l) = |slice(n, l)|` in `O(log L_n)` where
/// `L_n` is the number of distinct labels incident to `n`.
#[derive(Clone, Debug, Default)]
struct LabelCsr {
    list: Vec<EdgeId>,
    nbrs: Vec<NodeId>,
    range_offsets: Vec<u32>,
    ranges: Vec<LabelRange>,
}

impl LabelCsr {
    fn build(
        n: usize,
        edges: &[Edge],
        endpoint: impl Fn(&Edge) -> NodeId,
        neighbour: impl Fn(&Edge) -> NodeId,
    ) -> LabelCsr {
        let mut counts = vec![0u32; n + 1];
        for e in edges {
            counts[endpoint(e).index() + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut list = vec![EdgeId(0); edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let slot = &mut cursor[endpoint(e).index()];
            list[*slot as usize] = EdgeId::from_index(i);
            *slot += 1;
        }
        let mut range_offsets = Vec::with_capacity(n + 1);
        let mut ranges = Vec::new();
        range_offsets.push(0u32);
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            list[lo..hi].sort_unstable_by_key(|&eid| {
                let e = &edges[eid.index()];
                (e.label, neighbour(e), eid)
            });
            let mut run = lo;
            while run < hi {
                let label = edges[list[run].index()].label;
                let mut end = run + 1;
                while end < hi && edges[list[end].index()].label == label {
                    end += 1;
                }
                ranges.push(LabelRange {
                    label,
                    lo: run as u32,
                    hi: end as u32,
                });
                run = end;
            }
            range_offsets.push(ranges.len() as u32);
        }
        let nbrs = list.iter().map(|&e| neighbour(&edges[e.index()])).collect();
        LabelCsr {
            list,
            nbrs,
            range_offsets,
            ranges,
        }
    }

    #[inline]
    fn node_ranges(&self, n: NodeId) -> &[LabelRange] {
        let lo = self.range_offsets[n.index()] as usize;
        let hi = self.range_offsets[n.index() + 1] as usize;
        &self.ranges[lo..hi]
    }

    #[inline]
    fn find(&self, n: NodeId, l: LabelId) -> Option<(usize, usize)> {
        let ranges = self.node_ranges(n);
        ranges
            .binary_search_by_key(&l, |r| r.label)
            .ok()
            .map(|i| (ranges[i].lo as usize, ranges[i].hi as usize))
    }

    #[inline]
    fn slice(&self, n: NodeId, l: LabelId) -> &[EdgeId] {
        match self.find(n, l) {
            Some((lo, hi)) => &self.list[lo..hi],
            None => &[],
        }
    }

    #[inline]
    fn nbr_slice(&self, n: NodeId, l: LabelId) -> &[NodeId] {
        match self.find(n, l) {
            Some((lo, hi)) => &self.nbrs[lo..hi],
            None => &[],
        }
    }

    #[inline]
    fn pair_slices(&self, n: NodeId, l: LabelId) -> (&[EdgeId], &[NodeId]) {
        match self.find(n, l) {
            Some((lo, hi)) => (&self.list[lo..hi], &self.nbrs[lo..hi]),
            None => (&[], &[]),
        }
    }

    #[inline]
    fn degree(&self, n: NodeId, l: LabelId) -> usize {
        match self.find(n, l) {
            Some((lo, hi)) => hi - lo,
            None => 0,
        }
    }

    #[inline]
    fn runs(&self, n: NodeId) -> impl Iterator<Item = (LabelId, &[EdgeId], &[NodeId])> + '_ {
        self.node_ranges(n).iter().map(move |r| {
            (
                r.label,
                &self.list[r.lo as usize..r.hi as usize],
                &self.nbrs[r.lo as usize..r.hi as usize],
            )
        })
    }
}

/// Allocation counters recorded while building and freezing a [`Graph`],
/// surfaced through [`Graph::build_stats`] so perf runs can report how much
/// the construction path reallocated and how big the frozen arrays are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphBuildStats {
    /// Capacity-growth events across the builder's append arrays (node
    /// labels, attribute log, edge list). Zero when the builder was
    /// pre-reserved to its final size (the streaming loader/datagen path).
    pub builder_reallocs: u64,
    /// Raw `set_attr` calls recorded in the append log, including
    /// overwrites later resolved last-wins at freeze time.
    pub attr_writes: u64,
    /// Exact bytes held by the frozen graph's flat arrays (excluding the
    /// shared interner).
    pub graph_bytes: u64,
}

fn slice_bytes<T>(s: &[T]) -> u64 {
    std::mem::size_of_val(s) as u64
}

/// Mutable construction state for a [`Graph`].
///
/// Nodes, attributes and edges are *appended*: attributes go to a flat
/// `(node, attr, value)` log resolved last-wins at freeze time, so building
/// never allocates per node. [`GraphBuilder::with_capacity`] pre-reserves
/// the append arrays for bounded-allocation streaming construction.
///
/// ```
/// use gfd_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let x = b.add_node("person");
/// let y = b.add_node("product");
/// b.set_attr(y, "type", "film");
/// b.add_edge(x, y, "create");
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    interner: Arc<Interner>,
    labels: Vec<LabelId>,
    attr_log: Vec<(NodeId, AttrId, Value)>,
    edges: Vec<Edge>,
    reallocs: u64,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! push_counted {
    ($self:ident, $vec:ident, $val:expr) => {{
        if $self.$vec.len() == $self.$vec.capacity() {
            $self.reallocs += 1;
        }
        $self.$vec.push($val);
    }};
}

impl GraphBuilder {
    /// New builder with a fresh interner.
    pub fn new() -> Self {
        Self::with_interner(Arc::new(Interner::new()))
    }

    /// New builder sharing an existing interner (used by graph fragments so
    /// that label/attribute ids agree across fragments of the same graph).
    pub fn with_interner(interner: Arc<Interner>) -> Self {
        GraphBuilder {
            interner,
            labels: Vec::new(),
            attr_log: Vec::new(),
            edges: Vec::new(),
            reallocs: 0,
        }
    }

    /// New builder pre-reserved for `nodes` nodes, `edges` edges and
    /// `attrs` attribute writes — streaming construction at a known size
    /// then appends without a single reallocation.
    pub fn with_capacity(nodes: usize, edges: usize, attrs: usize) -> Self {
        let mut b = Self::new();
        b.reserve(nodes, edges, attrs);
        b
    }

    /// Reserves room for `nodes` more nodes, `edges` more edges and
    /// `attrs` more attribute writes.
    pub fn reserve(&mut self, nodes: usize, edges: usize, attrs: usize) {
        self.labels.reserve(nodes);
        self.edges.reserve(edges);
        self.attr_log.reserve(attrs);
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Adds a node labelled `label`, returning its id.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        let l = self.interner.label(label);
        self.add_node_by_id(l)
    }

    /// Adds a node with an already-interned label.
    pub fn add_node_by_id(&mut self, label: LabelId) -> NodeId {
        let id = NodeId::from_index(self.labels.len());
        push_counted!(self, labels, label);
        id
    }

    /// Sets attribute `attr = value` on node `n` (overwrites an existing
    /// binding of the same attribute — `A_i ≠ A_j` for `i ≠ j` in §2.1).
    pub fn set_attr<'a>(&mut self, n: NodeId, attr: &str, value: impl Into<ValueSpec<'a>>) {
        let a = self.interner.attr(attr);
        let v = value.into().intern(&self.interner);
        self.set_attr_by_id(n, a, v);
    }

    /// Sets an attribute with pre-interned ids. Appends to the attribute
    /// log; rewrites of the same `(node, attr)` resolve last-wins when the
    /// builder freezes.
    pub fn set_attr_by_id(&mut self, n: NodeId, attr: AttrId, value: Value) {
        debug_assert!(n.index() < self.labels.len(), "attr node out of range");
        push_counted!(self, attr_log, (n, attr, value));
    }

    /// Adds a directed edge `src → dst` labelled `label`.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: &str) -> EdgeId {
        let l = self.interner.label(label);
        self.add_edge_by_id(src, dst, l)
    }

    /// Adds an edge with an already-interned label.
    pub fn add_edge_by_id(&mut self, src: NodeId, dst: NodeId, label: LabelId) -> EdgeId {
        assert!(src.index() < self.labels.len(), "edge src out of range");
        assert!(dst.index() < self.labels.len(), "edge dst out of range");
        let id = EdgeId::from_index(self.edges.len());
        push_counted!(self, edges, Edge { src, dst, label });
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable, indexed [`Graph`].
    pub fn build(self) -> Graph {
        let GraphBuilder {
            interner,
            labels,
            mut attr_log,
            edges,
            reallocs,
        } = self;
        let n = labels.len();
        let attr_writes = attr_log.len() as u64;

        // Resolve the attribute log into one packed tuple array: stable
        // sort groups writes by (node, attr) preserving write order, so the
        // last entry of each group is the surviving binding.
        attr_log.sort_by_key(|&(node, attr, _)| (node, attr));
        let mut attr_offsets = vec![0u32; n + 1];
        let mut attr_entries: Vec<(AttrId, Value)> = Vec::with_capacity(attr_log.len());
        let mut i = 0;
        while i < attr_log.len() {
            let (node, attr, _) = attr_log[i];
            let mut j = i + 1;
            while j < attr_log.len() && attr_log[j].0 == node && attr_log[j].1 == attr {
                j += 1;
            }
            attr_entries.push((attr, attr_log[j - 1].2));
            attr_offsets[node.index() + 1] += 1;
            i = j;
        }
        for i in 1..=n {
            attr_offsets[i] += attr_offsets[i - 1];
        }
        drop(attr_log);

        // Out-CSR sorted by (dst, label) per node: enables binary-searched
        // `has_edge` / `edges_between` used when the matcher closes cycles.
        let out = Csr::build(n, &edges, |e| e.src, |e| e.dst);
        let inn = Csr::build(n, &edges, |e| e.dst, |e| e.src);
        // Label-partitioned CSRs sorted by (label, neighbour): anchor steps
        // with concrete edge labels walk one contiguous slice, and the
        // per-node label ranges serve as the NLF summary.
        let out_labeled = LabelCsr::build(n, &edges, |e| e.src, |e| e.dst);
        let in_labeled = LabelCsr::build(n, &edges, |e| e.dst, |e| e.src);

        // Per-label node index as one offsets array + one packed node
        // array (counting sort by label; ascending node id within label).
        let num_labels = labels.iter().map(|l| l.index() + 1).max().unwrap_or(0);
        let mut label_node_offsets = vec![0u32; num_labels + 1];
        for &l in &labels {
            label_node_offsets[l.index() + 1] += 1;
        }
        for i in 1..=num_labels {
            label_node_offsets[i] += label_node_offsets[i - 1];
        }
        let mut cursor = label_node_offsets.clone();
        let mut label_nodes = vec![NodeId(0); n];
        for (i, &l) in labels.iter().enumerate() {
            let slot = &mut cursor[l.index()];
            label_nodes[*slot as usize] = NodeId::from_index(i);
            *slot += 1;
        }

        let mut g = Graph {
            interner,
            labels,
            attr_offsets,
            attr_entries,
            edges,
            out,
            inn,
            out_labeled,
            in_labeled,
            label_node_offsets,
            label_nodes,
            build_stats: GraphBuildStats {
                builder_reallocs: reallocs,
                attr_writes,
                graph_bytes: 0,
            },
        };
        g.build_stats.graph_bytes = g.memory_bytes();
        g
    }
}

/// An immutable property graph in structure-of-arrays CSR layout: flat
/// offsets + packed payload arrays for adjacency (plain and
/// label-partitioned, both directions), attribute tuples, and the
/// per-label node index.
#[derive(Debug)]
pub struct Graph {
    interner: Arc<Interner>,
    labels: Vec<LabelId>,
    attr_offsets: Vec<u32>,
    attr_entries: Vec<(AttrId, Value)>,
    edges: Vec<Edge>,
    out: Csr,
    inn: Csr,
    out_labeled: LabelCsr,
    in_labeled: LabelCsr,
    label_node_offsets: Vec<u32>,
    label_nodes: Vec<NodeId>,
    build_stats: GraphBuildStats,
}

impl Graph {
    /// Empty graph (useful as a neutral element in tests).
    pub fn empty() -> Graph {
        GraphBuilder::new().build()
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `|V| + |E|`, the paper's `|G|`.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len()).map(NodeId::from_index)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The label `L(v)` of a node.
    #[inline]
    pub fn node_label(&self, n: NodeId) -> LabelId {
        self.labels[n.index()]
    }

    /// The edge record behind an id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// The attribute tuple `F_A(v)`, sorted by attribute id — one slice of
    /// the packed tuple array.
    #[inline]
    pub fn attrs(&self, n: NodeId) -> &[(AttrId, Value)] {
        let lo = self.attr_offsets[n.index()] as usize;
        let hi = self.attr_offsets[n.index() + 1] as usize;
        &self.attr_entries[lo..hi]
    }

    /// Value of attribute `a` at node `n`, if present.
    #[inline]
    pub fn attr(&self, n: NodeId, a: AttrId) -> Option<Value> {
        let tuple = self.attrs(n);
        tuple
            .binary_search_by_key(&a, |(x, _)| *x)
            .ok()
            .map(|i| tuple[i].1)
    }

    /// Outgoing edge ids of `n`, sorted by `(dst, label)`.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        self.out.slice(n)
    }

    /// Incoming edge ids of `n`, sorted by `(src, label)`.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        self.inn.slice(n)
    }

    /// Destinations of `n`'s outgoing edges, parallel to
    /// [`Graph::out_edges`] (sorted, so repeated neighbours are adjacent).
    #[inline]
    pub fn out_nbrs(&self, n: NodeId) -> &[NodeId] {
        self.out.nbr_slice(n)
    }

    /// Sources of `n`'s incoming edges, parallel to [`Graph::in_edges`].
    #[inline]
    pub fn in_nbrs(&self, n: NodeId) -> &[NodeId] {
        self.inn.nbr_slice(n)
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out.slice(n).len()
    }

    /// In-degree of `n`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.inn.slice(n).len()
    }

    /// Outgoing edges of `n` carrying exactly label `l`, as one contiguous
    /// slice sorted by `(dst, edge id)` — the label-partitioned adjacency.
    #[inline]
    pub fn out_edges_labeled(&self, n: NodeId, l: LabelId) -> &[EdgeId] {
        self.out_labeled.slice(n, l)
    }

    /// Incoming edges of `n` carrying exactly label `l`, sorted by
    /// `(src, edge id)`.
    #[inline]
    pub fn in_edges_labeled(&self, n: NodeId, l: LabelId) -> &[EdgeId] {
        self.in_labeled.slice(n, l)
    }

    /// Destinations of `n`'s outgoing `l`-labelled edges, parallel to
    /// [`Graph::out_edges_labeled`] — the packed neighbour walk used by
    /// anchor steps (sorted ascending, parallel edges adjacent).
    #[inline]
    pub fn out_nbrs_labeled(&self, n: NodeId, l: LabelId) -> &[NodeId] {
        self.out_labeled.nbr_slice(n, l)
    }

    /// Sources of `n`'s incoming `l`-labelled edges, parallel to
    /// [`Graph::in_edges_labeled`].
    #[inline]
    pub fn in_nbrs_labeled(&self, n: NodeId, l: LabelId) -> &[NodeId] {
        self.in_labeled.nbr_slice(n, l)
    }

    /// Both parallel slices of `n`'s outgoing `l`-labelled adjacency at
    /// once: `(edge ids, destinations)`.
    #[inline]
    pub fn out_adj_labeled(&self, n: NodeId, l: LabelId) -> (&[EdgeId], &[NodeId]) {
        self.out_labeled.pair_slices(n, l)
    }

    /// Both parallel slices of `n`'s incoming `l`-labelled adjacency at
    /// once: `(edge ids, sources)`.
    #[inline]
    pub fn in_adj_labeled(&self, n: NodeId, l: LabelId) -> (&[EdgeId], &[NodeId]) {
        self.in_labeled.pair_slices(n, l)
    }

    /// Number of outgoing edges of `n` labelled `l` — the out-side
    /// neighbour-label-frequency (NLF) summary used for candidate pruning.
    #[inline]
    pub fn out_label_degree(&self, n: NodeId, l: LabelId) -> usize {
        self.out_labeled.degree(n, l)
    }

    /// Number of incoming edges of `n` labelled `l` (in-side NLF).
    #[inline]
    pub fn in_label_degree(&self, n: NodeId, l: LabelId) -> usize {
        self.in_labeled.degree(n, l)
    }

    /// Iterates the label-partitioned out-adjacency of `n` as one
    /// `(label, edge ids, destinations)` run per distinct edge label, the
    /// two payload slices parallel and sorted by `(dst, edge id)` — the
    /// range-iteration helper behind label-indexed harvesting: per-label
    /// degrees and per-label neighbour walks come from one pass over the
    /// (small) per-node label index, and the packed neighbour slice means
    /// no per-entry edge-table dereference.
    #[inline]
    pub fn out_label_runs(
        &self,
        n: NodeId,
    ) -> impl Iterator<Item = (LabelId, &[EdgeId], &[NodeId])> + '_ {
        self.out_labeled.runs(n)
    }

    /// Iterates the label-partitioned in-adjacency of `n` as
    /// `(label, edge ids, sources)` runs, each sorted by `(src, edge id)`.
    #[inline]
    pub fn in_label_runs(
        &self,
        n: NodeId,
    ) -> impl Iterator<Item = (LabelId, &[EdgeId], &[NodeId])> + '_ {
        self.in_labeled.runs(n)
    }

    /// Total degree of `n` (the `d` parameter of Theorem 1(b)).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.out_degree(n) + self.in_degree(n)
    }

    /// Maximum total degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|n| self.degree(n)).max().unwrap_or(0)
    }

    /// Nodes carrying label `l`, ascending, as one slice of the packed
    /// per-label node array (empty for labels absent from the graph —
    /// including labels interned after the freeze, e.g. by patterns).
    pub fn nodes_with_label(&self, l: LabelId) -> &[NodeId] {
        let i = l.index();
        if i + 1 >= self.label_node_offsets.len() {
            return &[];
        }
        let lo = self.label_node_offsets[i] as usize;
        let hi = self.label_node_offsets[i + 1] as usize;
        &self.label_nodes[lo..hi]
    }

    /// Edge ids from `src` to `dst` (any label), via binary search over the
    /// packed neighbour array.
    pub fn edges_between(&self, src: NodeId, dst: NodeId) -> &[EdgeId] {
        self.edges_between_labeled(src, dst).0
    }

    /// Edge ids from `src` to `dst` plus the parallel slice of their edge
    /// labels (sorted ascending — the slice is a label-sorted run, so
    /// per-label grouping is a linear walk with no edge-table lookups).
    pub fn edges_between_labeled(&self, src: NodeId, dst: NodeId) -> (&[EdgeId], &[LabelId]) {
        let (lo_bound, hi_bound) = self.out.bounds(src);
        let nbrs = &self.out.nbrs[lo_bound..hi_bound];
        let lo = lo_bound + nbrs.partition_point(|&d| d < dst);
        let hi = lo_bound + nbrs.partition_point(|&d| d <= dst);
        (&self.out.list[lo..hi], &self.out.labels[lo..hi])
    }

    /// Edge ids from `dst`'s in-adjacency arriving from `src`, plus the
    /// parallel label slice (the in-side mirror of
    /// [`Graph::edges_between_labeled`], same edge set).
    pub fn in_edges_between_labeled(&self, dst: NodeId, src: NodeId) -> (&[EdgeId], &[LabelId]) {
        let (lo_bound, hi_bound) = self.inn.bounds(dst);
        let nbrs = &self.inn.nbrs[lo_bound..hi_bound];
        let lo = lo_bound + nbrs.partition_point(|&d| d < src);
        let hi = lo_bound + nbrs.partition_point(|&d| d <= src);
        (&self.inn.list[lo..hi], &self.inn.labels[lo..hi])
    }

    /// Whether an edge `src → dst` with exactly label `label` exists
    /// (binary search in the label-partitioned neighbour slice).
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: LabelId) -> bool {
        self.out_labeled
            .nbr_slice(src, label)
            .binary_search(&dst)
            .is_ok()
    }

    /// Whether any edge `src → dst` exists.
    pub fn has_any_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out.nbr_slice(src).binary_search(&dst).is_ok()
    }

    /// The shared string interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Allocation counters from construction (see [`GraphBuildStats`]).
    pub fn build_stats(&self) -> GraphBuildStats {
        self.build_stats
    }

    /// Exact bytes held by the frozen flat arrays (offsets, packed edge and
    /// neighbour lists, attribute tuples, label index; the shared interner
    /// is excluded). The frozen layout is a fixed set of large flat
    /// allocations, so this is an exact census, not an estimate.
    pub fn memory_bytes(&self) -> u64 {
        let csr = |c: &Csr| {
            slice_bytes(&c.offsets)
                + slice_bytes(&c.list)
                + slice_bytes(&c.nbrs)
                + slice_bytes(&c.labels)
        };
        let lcsr = |c: &LabelCsr| {
            slice_bytes(&c.list)
                + slice_bytes(&c.nbrs)
                + slice_bytes(&c.range_offsets)
                + slice_bytes(&c.ranges)
        };
        slice_bytes(&self.labels)
            + slice_bytes(&self.attr_offsets)
            + slice_bytes(&self.attr_entries)
            + slice_bytes(&self.edges)
            + csr(&self.out)
            + csr(&self.inn)
            + lcsr(&self.out_labeled)
            + lcsr(&self.in_labeled)
            + slice_bytes(&self.label_node_offsets)
            + slice_bytes(&self.label_nodes)
    }

    /// Distinct values of attribute `a`, with occurrence counts, sorted by
    /// descending count (used to pick the paper's "5 most frequent values").
    pub fn attr_value_frequencies(&self, a: AttrId) -> Vec<(Value, u32)> {
        let mut counts: FxHashMap<Value, u32> = FxHashMap::default();
        for n in self.nodes() {
            if let Some(v) = self.attr(n, a) {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(Value, u32)> = counts.into_iter().collect();
        out.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// Labels present on at least one node, with node counts, sorted by
    /// descending count.
    pub fn node_label_frequencies(&self) -> Vec<(LabelId, u32)> {
        let mut out: Vec<(LabelId, u32)> = self
            .label_node_offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[1] > w[0])
            .map(|(i, w)| (LabelId::from_index(i), w[1] - w[0]))
            .collect();
        out.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        // person --create--> product ; person --follow--> person
        let mut b = GraphBuilder::new();
        let p1 = b.add_node("person");
        let p2 = b.add_node("person");
        let f = b.add_node("product");
        b.set_attr(p1, "name", "John");
        b.set_attr(p1, "age", 30i64);
        b.set_attr(f, "type", "film");
        b.add_edge(p1, f, "create");
        b.add_edge(p1, p2, "follow");
        b.add_edge(p2, p1, "follow");
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let g = toy();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.size(), 6);
        let person = g.interner().lookup_label("person").unwrap();
        assert_eq!(g.nodes_with_label(person).len(), 2);
        let product = g.interner().lookup_label("product").unwrap();
        assert_eq!(g.nodes_with_label(product), &[NodeId(2)]);
    }

    #[test]
    fn attributes_sorted_and_searchable() {
        let g = toy();
        let name = g.interner().lookup_attr("name").unwrap();
        let age = g.interner().lookup_attr("age").unwrap();
        let john = g.interner().lookup_symbol("John").unwrap();
        assert_eq!(g.attr(NodeId(0), name), Some(Value::Str(john)));
        assert_eq!(g.attr(NodeId(0), age), Some(Value::Int(30)));
        assert_eq!(g.attr(NodeId(1), name), None);
        let tuple = g.attrs(NodeId(0));
        assert!(tuple.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn attr_overwrite_keeps_single_binding() {
        let mut b = GraphBuilder::new();
        let n = b.add_node("x");
        b.set_attr(n, "k", "v1");
        b.set_attr(n, "k", "v2");
        let g = b.build();
        assert_eq!(g.attrs(n).len(), 1);
        let k = g.interner().lookup_attr("k").unwrap();
        let v2 = g.interner().lookup_symbol("v2").unwrap();
        assert_eq!(g.attr(n, k), Some(Value::Str(v2)));
    }

    #[test]
    fn attr_overwrites_interleaved_across_nodes_resolve_last_wins() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("t");
        let y = b.add_node("t");
        b.set_attr(x, "a", "x1");
        b.set_attr(y, "a", "y1");
        b.set_attr(x, "b", 1i64);
        b.set_attr(x, "a", "x2");
        b.set_attr(y, "a", "y2");
        b.set_attr(x, "a", "x3");
        let g = b.build();
        assert_eq!(g.attrs(x).len(), 2);
        assert_eq!(g.attrs(y).len(), 1);
        let a = g.interner().lookup_attr("a").unwrap();
        let x3 = g.interner().lookup_symbol("x3").unwrap();
        let y2 = g.interner().lookup_symbol("y2").unwrap();
        assert_eq!(g.attr(x, a), Some(Value::Str(x3)));
        assert_eq!(g.attr(y, a), Some(Value::Str(y2)));
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = toy();
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.out_degree(NodeId(2)), 0);
        assert_eq!(g.in_degree(NodeId(2)), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edge_queries() {
        let g = toy();
        let create = g.interner().lookup_label("create").unwrap();
        let follow = g.interner().lookup_label("follow").unwrap();
        assert!(g.has_edge(NodeId(0), NodeId(2), create));
        assert!(!g.has_edge(NodeId(2), NodeId(0), create));
        assert!(g.has_edge(NodeId(0), NodeId(1), follow));
        assert!(g.has_edge(NodeId(1), NodeId(0), follow));
        assert!(!g.has_any_edge(NodeId(2), NodeId(1)));
        assert!(g.has_any_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.edges_between(NodeId(0), NodeId(2)).len(), 1);
    }

    #[test]
    fn multi_edges_between_same_pair() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("a");
        let y = b.add_node("b");
        b.add_edge(x, y, "r1");
        b.add_edge(x, y, "r2");
        b.add_edge(x, y, "r1");
        let g = b.build();
        assert_eq!(g.edges_between(x, y).len(), 3);
        let r1 = g.interner().lookup_label("r1").unwrap();
        let r2 = g.interner().lookup_label("r2").unwrap();
        assert!(g.has_edge(x, y, r1));
        assert!(g.has_edge(x, y, r2));
    }

    #[test]
    fn value_frequencies_ranked() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            let n = b.add_node("t");
            b.set_attr(n, "c", if i < 3 { "hi" } else { "lo" });
        }
        let g = b.build();
        let c = g.interner().lookup_attr("c").unwrap();
        let freq = g.attr_value_frequencies(c);
        assert_eq!(freq.len(), 2);
        assert_eq!(freq[0].1, 3);
        assert_eq!(freq[1].1, 2);
    }

    #[test]
    fn label_frequencies_ranked() {
        let g = toy();
        let freq = g.node_label_frequencies();
        assert_eq!(freq[0].1, 2); // person
        assert_eq!(freq[1].1, 1); // product
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes_with_label(LabelId(99)), &[]);
    }

    #[test]
    #[should_panic(expected = "edge src out of range")]
    fn dangling_edge_panics() {
        let mut b = GraphBuilder::new();
        let _ = b.add_node("a");
        b.add_edge_by_id(NodeId(5), NodeId(0), LabelId(0));
    }

    #[test]
    fn labeled_adjacency_matches_filtered_scan() {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(if i % 2 == 0 { "a" } else { "b" }))
            .collect();
        let labels = ["r", "s", "t"];
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                if (i + j) % 2 == 0 {
                    b.add_edge(nodes[i], nodes[j], labels[(i * j) % 3]);
                }
                if (i * 7 + j) % 3 == 0 {
                    b.add_edge(nodes[i], nodes[j], labels[j % 3]);
                }
            }
        }
        let g = b.build();
        for name in labels {
            let l = g.interner().lookup_label(name).unwrap();
            for n in g.nodes() {
                let mut expect_out: Vec<EdgeId> = g
                    .out_edges(n)
                    .iter()
                    .copied()
                    .filter(|&e| g.edge(e).label == l)
                    .collect();
                expect_out.sort_unstable_by_key(|&e| (g.edge(e).dst, e));
                assert_eq!(g.out_edges_labeled(n, l), expect_out.as_slice());
                assert_eq!(g.out_label_degree(n, l), expect_out.len());

                let mut expect_in: Vec<EdgeId> = g
                    .in_edges(n)
                    .iter()
                    .copied()
                    .filter(|&e| g.edge(e).label == l)
                    .collect();
                expect_in.sort_unstable_by_key(|&e| (g.edge(e).src, e));
                assert_eq!(g.in_edges_labeled(n, l), expect_in.as_slice());
                assert_eq!(g.in_label_degree(n, l), expect_in.len());
            }
        }
    }

    #[test]
    fn packed_neighbour_slices_parallel_the_edge_slices() {
        let g = toy();
        for n in g.nodes() {
            let out_expect: Vec<NodeId> = g.out_edges(n).iter().map(|&e| g.edge(e).dst).collect();
            assert_eq!(g.out_nbrs(n), out_expect.as_slice());
            let in_expect: Vec<NodeId> = g.in_edges(n).iter().map(|&e| g.edge(e).src).collect();
            assert_eq!(g.in_nbrs(n), in_expect.as_slice());
            for (l, edges, nbrs) in g.out_label_runs(n) {
                assert_eq!(edges.len(), nbrs.len());
                let expect: Vec<NodeId> = edges.iter().map(|&e| g.edge(e).dst).collect();
                assert_eq!(nbrs, expect.as_slice());
                let (pe, pn) = g.out_adj_labeled(n, l);
                assert_eq!(pe, edges);
                assert_eq!(pn, nbrs);
                assert_eq!(g.out_nbrs_labeled(n, l), nbrs);
            }
            for (l, edges, nbrs) in g.in_label_runs(n) {
                let expect: Vec<NodeId> = edges.iter().map(|&e| g.edge(e).src).collect();
                assert_eq!(nbrs, expect.as_slice());
                let (pe, pn) = g.in_adj_labeled(n, l);
                assert_eq!(pe, edges);
                assert_eq!(pn, nbrs);
                assert_eq!(g.in_nbrs_labeled(n, l), nbrs);
            }
        }
    }

    #[test]
    fn label_runs_cover_the_adjacency_exactly_once() {
        let g = toy();
        for n in g.nodes() {
            let mut out_run_edges: Vec<EdgeId> = Vec::new();
            for (l, edges, _) in g.out_label_runs(n) {
                assert_eq!(edges, g.out_edges_labeled(n, l));
                assert_eq!(edges.len(), g.out_label_degree(n, l));
                out_run_edges.extend_from_slice(edges);
            }
            let mut expect: Vec<EdgeId> = g.out_edges(n).to_vec();
            expect.sort_unstable();
            out_run_edges.sort_unstable();
            assert_eq!(out_run_edges, expect);

            let mut in_run_edges: Vec<EdgeId> = Vec::new();
            for (l, edges, _) in g.in_label_runs(n) {
                assert_eq!(edges, g.in_edges_labeled(n, l));
                in_run_edges.extend_from_slice(edges);
            }
            let mut expect: Vec<EdgeId> = g.in_edges(n).to_vec();
            expect.sort_unstable();
            in_run_edges.sort_unstable();
            assert_eq!(in_run_edges, expect);
        }
    }

    #[test]
    fn labeled_adjacency_absent_label_is_empty() {
        let g = toy();
        let missing = LabelId(999);
        assert_eq!(g.out_edges_labeled(NodeId(0), missing), &[]);
        assert_eq!(g.in_edges_labeled(NodeId(0), missing), &[]);
        assert_eq!(g.out_nbrs_labeled(NodeId(0), missing), &[]);
        assert_eq!(g.out_label_degree(NodeId(0), missing), 0);
        assert_eq!(g.in_label_degree(NodeId(0), missing), 0);
    }

    #[test]
    fn labeled_adjacency_groups_parallel_edges() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("a");
        let y = b.add_node("b");
        let z = b.add_node("b");
        b.add_edge(x, y, "r");
        b.add_edge(x, z, "r");
        b.add_edge(x, y, "r");
        b.add_edge(x, y, "s");
        let g = b.build();
        let r = g.interner().lookup_label("r").unwrap();
        let s = g.interner().lookup_label("s").unwrap();
        let rs = g.out_edges_labeled(x, r);
        assert_eq!(rs.len(), 3);
        // Sorted by destination: parallel edges to `y` are consecutive.
        assert_eq!(g.edge(rs[0]).dst, y);
        assert_eq!(g.edge(rs[1]).dst, y);
        assert_eq!(g.edge(rs[2]).dst, z);
        assert_eq!(g.out_nbrs_labeled(x, r), &[y, y, z]);
        assert_eq!(g.out_label_degree(x, r), 3);
        assert_eq!(g.out_label_degree(x, s), 1);
        assert_eq!(g.in_label_degree(y, r), 2);
    }

    #[test]
    fn preallocated_builder_appends_without_reallocating() {
        let mut b = GraphBuilder::with_capacity(10, 12, 8);
        let ns: Vec<NodeId> = (0..10).map(|_| b.add_node("t")).collect();
        for i in 0..8 {
            b.set_attr(ns[i % 10], "a", i as i64);
        }
        for i in 0..12 {
            b.add_edge(ns[i % 10], ns[(i + 1) % 10], "r");
        }
        let g = b.build();
        let st = g.build_stats();
        assert_eq!(st.builder_reallocs, 0, "{st:?}");
        assert_eq!(st.attr_writes, 8);
        assert!(st.graph_bytes > 0);
        assert_eq!(st.graph_bytes, g.memory_bytes());
    }

    #[test]
    fn unreserved_builder_counts_reallocs() {
        let mut b = GraphBuilder::new();
        for _ in 0..100 {
            let n = b.add_node("t");
            b.set_attr(n, "a", 1i64);
        }
        let g = b.build();
        assert!(g.build_stats().builder_reallocs > 0);
    }

    #[test]
    fn memory_bytes_grows_with_the_graph() {
        let small = toy();
        let mut b = GraphBuilder::new();
        let ns: Vec<NodeId> = (0..100).map(|_| b.add_node("t")).collect();
        for i in 0..99 {
            b.add_edge(ns[i], ns[i + 1], "r");
        }
        let big = b.build();
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
