//! Aggregate statistics over a graph: label-triple frequencies and degree
//! summaries used by the discovery layer's vertical spawning (§5.1) and by
//! the experiment reports.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::graph::Graph;
use crate::ids::LabelId;

/// Frequency record for a schema-level edge type
/// `(source label, edge label, destination label)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TripleStat {
    /// Source node label.
    pub src_label: LabelId,
    /// Edge label.
    pub edge_label: LabelId,
    /// Destination node label.
    pub dst_label: LabelId,
    /// Number of edges of this type.
    pub edge_count: u32,
    /// Number of distinct source nodes participating.
    pub distinct_src: u32,
    /// Number of distinct destination nodes participating.
    pub distinct_dst: u32,
}

/// Computes per-type edge statistics for the whole graph.
///
/// Vertical spawning uses these to (a) seed level-1 patterns with frequent
/// single-edge patterns and (b) propose *zero-support* extensions for
/// negative-GFD discovery (`NVSpawn`, §5.1): an extension is only worth
/// trying if its edge type occurs somewhere in `G`.
pub fn triple_stats(g: &Graph) -> Vec<TripleStat> {
    let mut edges: FxHashMap<(LabelId, LabelId, LabelId), u32> = FxHashMap::default();
    let mut srcs: FxHashMap<(LabelId, LabelId, LabelId), FxHashSet<u32>> = FxHashMap::default();
    let mut dsts: FxHashMap<(LabelId, LabelId, LabelId), FxHashSet<u32>> = FxHashMap::default();
    for e in g.edges() {
        let key = (g.node_label(e.src), e.label, g.node_label(e.dst));
        *edges.entry(key).or_insert(0) += 1;
        srcs.entry(key).or_default().insert(e.src.0);
        dsts.entry(key).or_default().insert(e.dst.0);
    }
    let mut out: Vec<TripleStat> = edges
        .into_iter()
        .map(|(key, edge_count)| TripleStat {
            src_label: key.0,
            edge_label: key.1,
            dst_label: key.2,
            edge_count,
            distinct_src: srcs[&key].len() as u32,
            distinct_dst: dsts[&key].len() as u32,
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        b.edge_count.cmp(&a.edge_count).then_with(|| {
            (a.src_label, a.edge_label, a.dst_label).cmp(&(b.src_label, b.edge_label, b.dst_label))
        })
    });
    out
}

/// Summary statistics for reporting (dataset tables in EXPERIMENTS.md).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Number of distinct node labels in use.
    pub node_labels: usize,
    /// Number of distinct edge labels in use.
    pub edge_labels: usize,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Average total degree (2|E| / |V|).
    pub avg_degree: f64,
    /// Total number of attribute bindings.
    pub attr_bindings: usize,
}

/// Computes a [`GraphSummary`].
pub fn summarize(g: &Graph) -> GraphSummary {
    let mut edge_labels: FxHashSet<LabelId> = FxHashSet::default();
    for e in g.edges() {
        edge_labels.insert(e.label);
    }
    let node_labels = g.node_label_frequencies().len();
    let attr_bindings = g.nodes().map(|n| g.attrs(n).len()).sum();
    GraphSummary {
        nodes: g.node_count(),
        edges: g.edge_count(),
        node_labels,
        edge_labels: edge_labels.len(),
        max_degree: g.max_degree(),
        avg_degree: if g.node_count() == 0 {
            0.0
        } else {
            2.0 * g.edge_count() as f64 / g.node_count() as f64
        },
        attr_bindings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let people: Vec<_> = (0..4).map(|_| b.add_node("person")).collect();
        let films: Vec<_> = (0..2).map(|_| b.add_node("film")).collect();
        b.add_edge(people[0], films[0], "create");
        b.add_edge(people[1], films[0], "create");
        b.add_edge(people[1], films[1], "create");
        b.add_edge(people[2], people[3], "parent");
        b.build()
    }

    #[test]
    fn triples_counted_and_sorted() {
        let g = sample();
        let stats = triple_stats(&g);
        assert_eq!(stats.len(), 2);
        let create = &stats[0];
        assert_eq!(create.edge_count, 3);
        assert_eq!(create.distinct_src, 2);
        assert_eq!(create.distinct_dst, 2);
        let parent = &stats[1];
        assert_eq!(parent.edge_count, 1);
        assert_eq!(parent.distinct_src, 1);
    }

    #[test]
    fn summary_fields() {
        let g = sample();
        let s = summarize(&g);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 4);
        assert_eq!(s.node_labels, 2);
        assert_eq!(s.edge_labels, 2);
        assert!(s.avg_degree > 1.3 && s.avg_degree < 1.34);
    }

    #[test]
    fn empty_graph_summary() {
        let g = Graph::empty();
        let s = summarize(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert!(triple_stats(&g).is_empty());
    }
}
