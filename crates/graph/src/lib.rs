//! # gfd-graph — property-graph substrate
//!
//! The graph model `G = (V, E, L, F_A)` of *Discovering Graph Functional
//! Dependencies* (Fan, Hu, Liu, Lu — SIGMOD 2018), §2.1: directed graphs with
//! labelled nodes and edges over one alphabet `Θ`, and per-node attribute
//! tuples. This crate provides:
//!
//! * compact id newtypes and a fast integer hasher ([`fxhash`]),
//! * a three-namespace string [`Interner`],
//! * [`GraphBuilder`] / frozen [`Graph`] with CSR adjacency, per-label node
//!   indexes, and binary-searched edge lookup,
//! * graph statistics for the discovery layer ([`stats`]),
//! * a plain-text serialisation format ([`io`]) and a triple-dump loader
//!   ([`triples`]) for RDF-style subject–predicate–object files.
//!
//! Everything above this crate (patterns, GFDs, discovery, parallel
//! execution) manipulates only the ids defined here on its hot paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fxhash;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod stats;
pub mod triples;
pub mod value;

pub use fxhash::{FxHashMap, FxHashSet};
pub use graph::{Edge, Graph, GraphBuildStats, GraphBuilder};
pub use ids::{AttrId, EdgeId, LabelId, NodeId, SymbolId};
pub use interner::Interner;
pub use stats::{summarize, triple_stats, GraphSummary, TripleStat};
pub use triples::{from_triples, load_triples, TripleConfig};
pub use value::{Value, ValueSpec};
