//! String interning for labels, attribute names, and string constants.
//!
//! Graphs, patterns, and GFDs all refer to strings through compact ids
//! ([`LabelId`], [`AttrId`], [`SymbolId`]). A single [`Interner`] per graph
//! keeps the three namespaces; interning uses interior mutability so that
//! patterns and dependencies can be authored against an already-frozen graph.

use std::sync::RwLock;

use crate::fxhash::FxHashMap;
use crate::ids::{AttrId, LabelId, SymbolId};

#[derive(Default, Debug)]
struct Pool {
    by_name: FxHashMap<String, u32>,
    names: Vec<String>,
}

impl Pool {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_name.get(s) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(s.to_owned());
        self.by_name.insert(s.to_owned(), id);
        id
    }

    fn get(&self, s: &str) -> Option<u32> {
        self.by_name.get(s).copied()
    }

    fn name(&self, id: u32) -> Option<String> {
        self.names.get(id as usize).cloned()
    }
}

/// Three-namespace string interner (labels, attributes, symbols).
///
/// Thread-safe: lookups take a read lock, interning takes a write lock only
/// when the string is new. Matching and discovery never touch the interner on
/// their hot paths — they compare ids.
#[derive(Default, Debug)]
pub struct Interner {
    labels: RwLock<Pool>,
    attrs: RwLock<Pool>,
    symbols: RwLock<Pool>,
}

macro_rules! pool_api {
    ($intern:ident, $lookup:ident, $name:ident, $count:ident, $field:ident, $id:ident) => {
        /// Interns a string in this namespace, returning its id.
        pub fn $intern(&self, s: &str) -> $id {
            if let Some(id) = self.$field.read().unwrap().get(s) {
                return $id::from_index(id as usize);
            }
            $id::from_index(self.$field.write().unwrap().intern(s) as usize)
        }

        /// Looks up an already-interned string without inserting.
        pub fn $lookup(&self, s: &str) -> Option<$id> {
            self.$field
                .read()
                .unwrap()
                .get(s)
                .map(|id| $id::from_index(id as usize))
        }

        /// Resolves an id back to its string (allocates; not for hot paths).
        pub fn $name(&self, id: $id) -> String {
            self.$field
                .read()
                .unwrap()
                .name(id.index() as u32)
                .unwrap_or_else(|| format!("<{:?}>", id))
        }

        /// Number of interned strings in this namespace.
        pub fn $count(&self) -> usize {
            self.$field.read().unwrap().names.len()
        }
    };
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    pool_api!(
        label,
        lookup_label,
        label_name,
        label_count,
        labels,
        LabelId
    );
    pool_api!(attr, lookup_attr, attr_name, attr_count, attrs, AttrId);
    pool_api!(
        symbol,
        lookup_symbol,
        symbol_name,
        symbol_count,
        symbols,
        SymbolId
    );

    /// Snapshot of all label names, indexed by [`LabelId`].
    pub fn all_labels(&self) -> Vec<String> {
        self.labels.read().unwrap().names.clone()
    }

    /// Snapshot of all attribute names, indexed by [`AttrId`].
    pub fn all_attrs(&self) -> Vec<String> {
        self.attrs.read().unwrap().names.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let i = Interner::new();
        let a = i.label("person");
        let b = i.label("person");
        assert_eq!(a, b);
        assert_eq!(i.label_name(a), "person");
        assert_eq!(i.label_count(), 1);
    }

    #[test]
    fn namespaces_are_disjoint() {
        let i = Interner::new();
        let l = i.label("name");
        let a = i.attr("name");
        let s = i.symbol("name");
        assert_eq!(l.index(), 0);
        assert_eq!(a.index(), 0);
        assert_eq!(s.index(), 0);
        assert_eq!(i.label_count(), 1);
        assert_eq!(i.attr_count(), 1);
        assert_eq!(i.symbol_count(), 1);
    }

    #[test]
    fn lookup_does_not_insert() {
        let i = Interner::new();
        assert_eq!(i.lookup_label("ghost"), None);
        assert_eq!(i.label_count(), 0);
        let id = i.label("ghost");
        assert_eq!(i.lookup_label("ghost"), Some(id));
    }

    #[test]
    fn snapshots_indexed_by_id() {
        let i = Interner::new();
        let a = i.label("alpha");
        let b = i.label("beta");
        let labels = i.all_labels();
        assert_eq!(labels[a.index()], "alpha");
        assert_eq!(labels[b.index()], "beta");
        i.attr("x");
        i.attr("y");
        assert_eq!(i.all_attrs(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn concurrent_interning() {
        use std::sync::Arc;
        let i = Arc::new(Interner::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || {
                    for k in 0..100 {
                        i.symbol(&format!("v{}", (k + t) % 50));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(i.symbol_count(), 50);
    }
}
