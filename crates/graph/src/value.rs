//! Attribute values carried by graph nodes.

use std::fmt;

use crate::ids::SymbolId;
use crate::interner::Interner;

/// A constant attribute value (`a_i` in `F_A(v) = (A_1 = a_1, …)`, §2.1).
///
/// Strings are interned per graph; integers are stored inline. Equality is
/// exact (no cross-type coercion: `Int(5) != Str("5")`), matching the paper's
/// treatment of constants as opaque values compared for equality only.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// Interned string constant.
    Str(SymbolId),
    /// Integer constant.
    Int(i64),
}

impl Value {
    /// Renders the value through `interner` (allocates; diagnostics only).
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            Value::Str(s) => interner.symbol_name(*s),
            Value::Int(i) => i.to_string(),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<SymbolId> for Value {
    fn from(s: SymbolId) -> Self {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "s{}", s.index()),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// A not-yet-interned value, accepted by builder APIs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueSpec<'a> {
    /// A string to be interned on insertion.
    Str(&'a str),
    /// An integer, stored as-is.
    Int(i64),
}

impl<'a> ValueSpec<'a> {
    /// Interns the value through `interner`.
    pub fn intern(&self, interner: &Interner) -> Value {
        match self {
            ValueSpec::Str(s) => Value::Str(interner.symbol(s)),
            ValueSpec::Int(i) => Value::Int(*i),
        }
    }
}

impl<'a> From<&'a str> for ValueSpec<'a> {
    fn from(s: &'a str) -> Self {
        ValueSpec::Str(s)
    }
}

impl<'a> From<i64> for ValueSpec<'a> {
    fn from(i: i64) -> Self {
        ValueSpec::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values_intern_consistently() {
        let i = Interner::new();
        let a = ValueSpec::from("film").intern(&i);
        let b = ValueSpec::from("film").intern(&i);
        assert_eq!(a, b);
        assert_eq!(a.display(&i), "film");
    }

    #[test]
    fn no_cross_type_equality() {
        let i = Interner::new();
        let s = ValueSpec::from("5").intern(&i);
        let n = ValueSpec::from(5i64).intern(&i);
        assert_ne!(s, n);
        assert_eq!(n.display(&i), "5");
    }

    #[test]
    fn ordering_is_total() {
        let i = Interner::new();
        let a = ValueSpec::from("a").intern(&i);
        let b = ValueSpec::from("b").intern(&i);
        let mut v = [Value::Int(3), b, a, Value::Int(-1)];
        v.sort();
        assert_eq!(v.len(), 4);
    }
}
