//! Compact integer identifiers used throughout the workspace.
//!
//! All identifiers are `u32`-backed newtypes (attributes are `u16`-backed:
//! the paper works with a handful of *active attributes* `Γ`, §4.3), keeping
//! hot structures small per the type-size guidance of the performance guide.

use std::fmt;

/// Identifier of a node in a [`crate::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`crate::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

/// Interned node/edge label drawn from the alphabet `Θ` of the paper (§2.1).
///
/// Node labels and edge labels share one alphabet, exactly as in the paper
/// ("an alphabet Θ of the node and edge labels in graphs").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

/// Interned attribute name (`A` in `x.A = c`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

/// Interned string constant appearing as an attribute value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

macro_rules! id_impls {
    ($ty:ident, $prefix:literal, $inner:ty) => {
        impl $ty {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a raw index.
            ///
            /// # Panics
            /// Panics if `i` does not fit the backing integer type.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $ty(<$inner>::try_from(i).expect(concat!(stringify!($ty), " overflow")))
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_impls!(NodeId, "n", u32);
id_impls!(EdgeId, "e", u32);
id_impls!(LabelId, "l", u32);
id_impls!(AttrId, "a", u16);
id_impls!(SymbolId, "s", u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(AttrId::from_index(65535).index(), 65535);
        assert_eq!(format!("{:?}", LabelId(3)), "l3");
        assert_eq!(format!("{}", EdgeId(3)), "3");
    }

    #[test]
    #[should_panic(expected = "AttrId overflow")]
    fn attr_overflow_panics() {
        let _ = AttrId::from_index(1 << 20);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(SymbolId(9) > SymbolId(3));
    }
}
