//! Graph functional dependencies `Q[x̄](X → Y)` (§2.2).

use gfd_graph::Interner;
use gfd_pattern::{Pattern, Var};

use crate::closure::Closure;
use crate::literal::{normalize_literals, Literal};

/// The consequence of a GFD in normal form: a single literal, or `false`.
///
/// The paper restricts positive GFDs w.l.o.g. to a single RHS literal
/// (normal form, §2.2); `false` is syntactic sugar for an unsatisfiable
/// consequence and marks negative GFDs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rhs {
    /// A single literal `l`.
    Lit(Literal),
    /// The Boolean constant `false`.
    False,
}

impl Rhs {
    /// Renders through an interner.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            Rhs::Lit(l) => l.display(interner),
            Rhs::False => "false".to_owned(),
        }
    }
}

/// A graph functional dependency `φ = Q[x̄](X → l)` in normal form.
///
/// Invariants enforced on construction: `X` is sorted and de-duplicated;
/// every literal mentions only variables of `Q`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Gfd {
    pattern: Pattern,
    lhs: Vec<Literal>,
    rhs: Rhs,
}

impl Gfd {
    /// Builds a GFD, normalising the literal set.
    ///
    /// # Panics
    /// Panics if a literal mentions a variable outside `Q[x̄]`.
    pub fn new(pattern: Pattern, lhs: Vec<Literal>, rhs: Rhs) -> Gfd {
        let n = pattern.node_count();
        for l in &lhs {
            assert!(l.max_var() < n, "LHS literal mentions unknown variable");
        }
        if let Rhs::Lit(l) = &rhs {
            assert!(l.max_var() < n, "RHS literal mentions unknown variable");
        }
        Gfd {
            pattern,
            lhs: normalize_literals(lhs),
            rhs,
        }
    }

    /// The pattern `Q[x̄]`.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The premise literal set `X` (sorted, deduplicated).
    pub fn lhs(&self) -> &[Literal] {
        &self.lhs
    }

    /// The consequence.
    pub fn rhs(&self) -> Rhs {
        self.rhs
    }

    /// Number of pattern nodes `|x̄|` (the parameter `k` of §3).
    pub fn k(&self) -> usize {
        self.pattern.node_count()
    }

    /// Whether `X` is internally unsatisfiable (conflicting on its own
    /// equality closure).
    pub fn lhs_unsatisfiable(&self) -> bool {
        Closure::of_literals(&self.lhs).is_conflicting()
    }

    /// Negative GFD: `Q[x̄](X → false)` with satisfiable `X` (§2.2).
    pub fn is_negative(&self) -> bool {
        matches!(self.rhs, Rhs::False) && !self.lhs_unsatisfiable()
    }

    /// Positive GFD (everything that is not negative).
    pub fn is_positive(&self) -> bool {
        !self.is_negative()
    }

    /// Trivial GFD (§4.1): `X` is unsatisfiable, or `l` already follows from
    /// `X` by equality transitivity. Trivial GFDs are excluded from
    /// discovery output.
    pub fn is_trivial(&self) -> bool {
        let c = Closure::of_literals(&self.lhs);
        if c.is_conflicting() {
            return true;
        }
        match &self.rhs {
            Rhs::Lit(l) => c.holds(l),
            Rhs::False => false,
        }
    }

    /// Remaps all literals by `f` (an embedding image vector); the pattern
    /// is replaced by `into` which must contain the image variables.
    pub fn remap_into(&self, f: &[Var], into: Pattern) -> Gfd {
        let lhs = self.lhs.iter().map(|l| l.remap(f)).collect();
        let rhs = match self.rhs {
            Rhs::Lit(l) => Rhs::Lit(l.remap(f)),
            Rhs::False => Rhs::False,
        };
        Gfd::new(into, lhs, rhs)
    }

    /// Human-readable rendering, e.g.
    /// `Q[x0:person*, x1:product; x0-create->x1](x1.type="film" -> x0.type="producer")`.
    pub fn display(&self, interner: &Interner) -> String {
        let lhs = if self.lhs.is_empty() {
            "∅".to_owned()
        } else {
            self.lhs
                .iter()
                .map(|l| l.display(interner))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        format!(
            "{}({} -> {})",
            self.pattern.display(interner),
            lhs,
            self.rhs.display(interner)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{AttrId, LabelId, Value};
    use gfd_pattern::PLabel;

    fn l(i: u32) -> PLabel {
        PLabel::Is(LabelId(i))
    }

    fn q1() -> Pattern {
        Pattern::edge(l(0), l(1), l(2))
    }

    #[test]
    fn normal_form_normalises_lhs() {
        let a = Literal::constant(0, AttrId(0), Value::Int(1));
        let b = Literal::constant(1, AttrId(0), Value::Int(2));
        let g = Gfd::new(q1(), vec![b, a, b], Rhs::Lit(a));
        assert_eq!(g.lhs().len(), 2);
        assert!(g.lhs()[0] < g.lhs()[1]);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn out_of_range_literal_rejected() {
        let bad = Literal::constant(5, AttrId(0), Value::Int(1));
        let _ = Gfd::new(q1(), vec![bad], Rhs::False);
    }

    #[test]
    fn negativity_requires_satisfiable_lhs() {
        let x1 = Literal::constant(0, AttrId(0), Value::Int(1));
        let x2 = Literal::constant(0, AttrId(0), Value::Int(2));
        let neg = Gfd::new(q1(), vec![x1], Rhs::False);
        assert!(neg.is_negative());
        assert!(!neg.is_positive());
        // Conflicting X: not negative (and trivial).
        let junk = Gfd::new(q1(), vec![x1, x2], Rhs::False);
        assert!(!junk.is_negative());
        assert!(junk.is_trivial());
    }

    #[test]
    fn triviality_detection() {
        let x = Literal::constant(0, AttrId(0), Value::Int(1));
        // RHS repeats a premise: trivial.
        let t = Gfd::new(q1(), vec![x], Rhs::Lit(x));
        assert!(t.is_trivial());
        // RHS follows by transitivity: x0.A=x1.B ∧ x0.A=1 ⟹ x1.B=1.
        let eq = Literal::var_var(0, AttrId(0), 1, AttrId(1));
        let concl = Literal::constant(1, AttrId(1), Value::Int(1));
        let t2 = Gfd::new(q1(), vec![eq, x], Rhs::Lit(concl));
        assert!(t2.is_trivial());
        // Genuine dependency: not trivial.
        let real = Gfd::new(q1(), vec![x], Rhs::Lit(concl));
        assert!(!real.is_trivial());
        // Negative GFD with satisfiable X: not trivial.
        let neg = Gfd::new(q1(), vec![x], Rhs::False);
        assert!(!neg.is_trivial());
    }

    #[test]
    fn display_of_phi1() {
        let i = Interner::new();
        let person = PLabel::Is(i.label("person"));
        let create = PLabel::Is(i.label("create"));
        let product = PLabel::Is(i.label("product"));
        let ty = i.attr("type");
        let film = Value::Str(i.symbol("film"));
        let producer = Value::Str(i.symbol("producer"));
        let phi1 = Gfd::new(
            Pattern::edge(person, create, product),
            vec![Literal::constant(1, ty, film)],
            Rhs::Lit(Literal::constant(0, ty, producer)),
        );
        assert_eq!(
            phi1.display(&i),
            "Q[x0:person*, x1:product; x0-create->x1](x1.type=\"film\" -> x0.type=\"producer\")"
        );
        let neg = Gfd::new(Pattern::edge(person, create, product), vec![], Rhs::False);
        assert!(neg.display(&i).ends_with("(∅ -> false)"));
    }
}
