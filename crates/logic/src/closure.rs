//! The chase-style closure `closure(Σ_Q, X)` of §3.
//!
//! Terms are `(variable, attribute)` pairs. The closure is a union–find
//! over terms where each equivalence class may carry one constant binding;
//! two distinct constants in one class — or a derived `false` — make the
//! closure **conflicting**. GFDs embedded in the pattern `Q` are applied to
//! a fixpoint: whenever an embedding maps a GFD's premises into the closure,
//! its (mapped) consequence is added. `enforced(Σ_Q)` is the special case
//! `X = ∅`.

use gfd_graph::{AttrId, FxHashMap, Value};
use gfd_pattern::{for_each_embedding, EmbedOptions, Pattern, Var};

use crate::gfd::{Gfd, Rhs};
use crate::literal::Literal;

/// A deduction state over `(variable, attribute)` terms.
#[derive(Clone, Debug, Default)]
pub struct Closure {
    index: FxHashMap<(Var, AttrId), usize>,
    parent: Vec<usize>,
    constant: Vec<Option<Value>>,
    conflict: bool,
}

impl Closure {
    /// Empty (non-conflicting) closure.
    pub fn new() -> Closure {
        Closure::default()
    }

    /// Builds the closure of a literal set alone (transitivity of equality,
    /// no GFD application).
    pub fn of_literals(lits: &[Literal]) -> Closure {
        let mut c = Closure::new();
        c.rebuild(lits);
        c
    }

    /// Resets to the empty closure, keeping the allocations.
    pub fn clear(&mut self) {
        self.index.clear();
        self.parent.clear();
        self.constant.clear();
        self.conflict = false;
    }

    /// Clears and re-adds `lits` — [`Self::of_literals`] without the fresh
    /// allocations.
    pub fn rebuild(&mut self, lits: &[Literal]) {
        self.clear();
        for l in lits {
            self.add(l);
        }
    }

    fn term(&mut self, var: Var, attr: AttrId) -> usize {
        if let Some(&i) = self.index.get(&(var, attr)) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.constant.push(None);
        self.index.insert((var, attr), i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn find_existing(&self, var: Var, attr: AttrId) -> Option<usize> {
        let mut i = *self.index.get(&(var, attr))?;
        while self.parent[i] != i {
            i = self.parent[i];
        }
        Some(i)
    }

    /// Adds a literal to the closure; returns `true` if the state changed.
    pub fn add(&mut self, lit: &Literal) -> bool {
        match *lit {
            Literal::Const { var, attr, value } => {
                let t = self.term(var, attr);
                let root = self.find(t);
                match self.constant[root] {
                    Some(v) if v == value => false,
                    Some(_) => {
                        let was = self.conflict;
                        self.conflict = true;
                        !was
                    }
                    None => {
                        self.constant[root] = Some(value);
                        true
                    }
                }
            }
            Literal::VarVar {
                lvar,
                lattr,
                rvar,
                rattr,
            } => {
                let a = self.term(lvar, lattr);
                let b = self.term(rvar, rattr);
                let (ra, rb) = (self.find(a), self.find(b));
                if ra == rb {
                    return false;
                }
                let merged = match (self.constant[ra], self.constant[rb]) {
                    (Some(x), Some(y)) if x != y => {
                        self.conflict = true;
                        Some(x)
                    }
                    (Some(x), _) => Some(x),
                    (_, y) => y,
                };
                self.parent[rb] = ra;
                self.constant[ra] = merged;
                true
            }
        }
    }

    /// Marks the closure conflicting (a derived `false`).
    pub fn mark_false(&mut self) {
        self.conflict = true;
    }

    /// Whether the closure contains `x.A = c ∧ x.A = d` for `c ≠ d` (or a
    /// derived `false`).
    pub fn is_conflicting(&self) -> bool {
        self.conflict
    }

    /// Whether `lit` is entailed by the closure. (A conflicting closure
    /// entails everything; callers usually check [`Self::is_conflicting`]
    /// first — this method reports *derivability from the equalities*.)
    pub fn holds(&self, lit: &Literal) -> bool {
        if self.conflict {
            return true;
        }
        match *lit {
            Literal::Const { var, attr, value } => self
                .find_existing(var, attr)
                .and_then(|r| self.constant[r])
                .map(|v| v == value)
                .unwrap_or(false),
            Literal::VarVar {
                lvar,
                lattr,
                rvar,
                rattr,
            } => {
                let (Some(ra), Some(rb)) = (
                    self.find_existing(lvar, lattr),
                    self.find_existing(rvar, rattr),
                ) else {
                    return false;
                };
                if ra == rb {
                    return true;
                }
                matches!(
                    (self.constant[ra], self.constant[rb]),
                    (Some(x), Some(y)) if x == y
                )
            }
        }
    }
}

/// A reusable [`Closure`] for hot loops that build one closure per
/// candidate (the `HSpawn` lattice builds ~one per evaluated premise set,
/// hundreds of thousands per run): the union–find arrays and the term index
/// are cleared and refilled instead of reallocated.
#[derive(Debug, Default)]
pub struct ClosureScratch {
    c: Closure,
}

impl ClosureScratch {
    /// Empty scratch.
    pub fn new() -> ClosureScratch {
        ClosureScratch::default()
    }

    /// The closure of `lits`, built in place. The returned borrow is valid
    /// until the next call.
    pub fn of_literals(&mut self, lits: &[Literal]) -> &Closure {
        self.c.rebuild(lits);
        &self.c
    }
}

/// One embedded rule instance: premises and conclusion already remapped into
/// the host pattern's variables.
#[derive(Clone, Debug)]
struct Rule {
    premises: Vec<Literal>,
    conclusion: Option<Literal>, // None encodes `false`
}

/// Quick necessary condition for `sub` to embed into `host` (size filter).
fn may_embed(sub: &Pattern, host: &Pattern) -> bool {
    sub.node_count() <= host.node_count() && sub.edge_count() <= host.edge_count()
}

/// Computes `closure(Σ_Q, X)` for pattern `q` (§3): the literals deduced
/// from `x` by equality transitivity and by applying every GFD of `sigma`
/// embedded in `q`, to a fixpoint.
pub fn closure_of(q: &Pattern, sigma: &[Gfd], x: &[Literal]) -> Closure {
    closure_of_refs(q, sigma.iter(), x)
}

/// [`closure_of`] over borrowed GFDs, letting cover computation exclude
/// candidates without cloning the whole set.
pub fn closure_of_refs<'a>(
    q: &Pattern,
    sigma: impl IntoIterator<Item = &'a Gfd>,
    x: &[Literal],
) -> Closure {
    // Collect all rule instances from embeddings of sigma's patterns in q.
    let mut rules: Vec<Rule> = Vec::new();
    let opts = EmbedOptions {
        preserve_pivot: false,
    };
    for phi in sigma {
        if !may_embed(phi.pattern(), q) {
            continue;
        }
        let _ = for_each_embedding(phi.pattern(), q, opts, |f| {
            let premises = phi.lhs().iter().map(|l| l.remap(f)).collect();
            let conclusion = match phi.rhs() {
                Rhs::Lit(l) => Some(l.remap(f)),
                Rhs::False => None,
            };
            rules.push(Rule {
                premises,
                conclusion,
            });
            std::ops::ControlFlow::Continue(())
        });
    }

    let mut c = Closure::of_literals(x);
    let mut fired = vec![false; rules.len()];
    loop {
        if c.is_conflicting() {
            return c;
        }
        let mut changed = false;
        for (i, rule) in rules.iter().enumerate() {
            if fired[i] {
                continue;
            }
            if rule.premises.iter().all(|p| c.holds(p)) {
                fired[i] = true;
                match &rule.conclusion {
                    Some(l) => {
                        if c.add(l) {
                            changed = true;
                        }
                    }
                    None => {
                        c.mark_false();
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return c;
        }
    }
}

/// `enforced(Σ_Q)` — the closure with empty `X` (§3).
pub fn enforced(q: &Pattern, sigma: &[Gfd]) -> Closure {
    closure_of(q, sigma, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{AttrId, Value};
    use gfd_pattern::{PLabel, Pattern};

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn constants_and_conflicts() {
        let mut c = Closure::new();
        assert!(c.add(&Literal::constant(0, a(0), v(1))));
        assert!(!c.add(&Literal::constant(0, a(0), v(1)))); // no change
        assert!(c.holds(&Literal::constant(0, a(0), v(1))));
        assert!(!c.holds(&Literal::constant(0, a(0), v(2))));
        assert!(!c.is_conflicting());
        c.add(&Literal::constant(0, a(0), v(2)));
        assert!(c.is_conflicting());
    }

    #[test]
    fn scratch_closure_matches_fresh_closure() {
        let mut scratch = ClosureScratch::new();
        let sets: Vec<Vec<Literal>> = vec![
            vec![],
            vec![Literal::constant(0, a(0), v(1))],
            vec![
                Literal::constant(0, a(0), v(1)),
                Literal::constant(0, a(0), v(2)),
            ],
            vec![
                Literal::var_var(0, a(0), 1, a(0)),
                Literal::constant(1, a(0), v(7)),
            ],
        ];
        let probes = [
            Literal::constant(0, a(0), v(1)),
            Literal::constant(0, a(0), v(7)),
            Literal::var_var(0, a(0), 1, a(0)),
        ];
        for x in &sets {
            let fresh = Closure::of_literals(x);
            let reused = scratch.of_literals(x);
            assert_eq!(fresh.is_conflicting(), reused.is_conflicting(), "{x:?}");
            for p in &probes {
                assert_eq!(fresh.holds(p), reused.holds(p), "{x:?} ⊢ {p:?}");
            }
        }
    }

    #[test]
    fn equality_transitivity() {
        let mut c = Closure::new();
        c.add(&Literal::var_var(0, a(0), 1, a(0)));
        c.add(&Literal::var_var(1, a(0), 2, a(0)));
        assert!(c.holds(&Literal::var_var(0, a(0), 2, a(0))));
        // Constant propagates through the class.
        c.add(&Literal::constant(2, a(0), v(7)));
        assert!(c.holds(&Literal::constant(0, a(0), v(7))));
    }

    #[test]
    fn conflict_via_merged_constants() {
        let mut c = Closure::new();
        c.add(&Literal::constant(0, a(0), v(1)));
        c.add(&Literal::constant(1, a(0), v(2)));
        assert!(!c.is_conflicting());
        c.add(&Literal::var_var(0, a(0), 1, a(0)));
        assert!(c.is_conflicting());
    }

    #[test]
    fn equal_constants_entail_var_var() {
        let mut c = Closure::new();
        c.add(&Literal::constant(0, a(0), v(1)));
        c.add(&Literal::constant(1, a(3), v(1)));
        assert!(c.holds(&Literal::var_var(0, a(0), 1, a(3))));
    }

    #[test]
    fn closure_applies_embedded_gfds() {
        // φ: person->product(create) with type(y)=film → type(x)=producer.
        // Q = the same pattern; X = {y.type=film} must derive x.type=producer.
        let person = PLabel::Is(gfd_graph::LabelId(0));
        let create = PLabel::Is(gfd_graph::LabelId(1));
        let product = PLabel::Is(gfd_graph::LabelId(2));
        let q1 = Pattern::edge(person, create, product);
        let ty = a(0);
        let film = v(100);
        let producer = v(200);
        let phi = Gfd::new(
            q1.clone(),
            vec![Literal::constant(1, ty, film)],
            Rhs::Lit(Literal::constant(0, ty, producer)),
        );
        let c = closure_of(
            &q1,
            std::slice::from_ref(&phi),
            &[Literal::constant(1, ty, film)],
        );
        assert!(c.holds(&Literal::constant(0, ty, producer)));
        assert!(!c.is_conflicting());

        // Without X, nothing fires.
        let c2 = enforced(&q1, &[phi]);
        assert!(!c2.holds(&Literal::constant(0, ty, producer)));
    }

    #[test]
    fn closure_derives_false_from_negative_gfd() {
        let person = PLabel::Is(gfd_graph::LabelId(0));
        let parent = PLabel::Is(gfd_graph::LabelId(1));
        let q = Pattern::edge(person, parent, person);
        let q3 = q.extend(&gfd_pattern::Extension {
            src: gfd_pattern::End::Var(1),
            dst: gfd_pattern::End::Var(0),
            label: parent,
        });
        let neg = Gfd::new(q3.clone(), vec![], Rhs::False);
        // enforced over Q3 itself: conflicting (no match of Q3 may exist).
        let c = enforced(&q3, std::slice::from_ref(&neg));
        assert!(c.is_conflicting());
        // Over the single-edge Q the negative GFD does not embed.
        let c2 = enforced(&q, &[neg]);
        assert!(!c2.is_conflicting());
    }

    #[test]
    fn chained_rule_application_reaches_fixpoint() {
        // Two rules on a single-node pattern: A=1 → B=2, B=2 → C=3.
        let q = Pattern::single(PLabel::Wildcard);
        let r1 = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(1), v(2))),
        );
        let r2 = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(1), v(2))],
            Rhs::Lit(Literal::constant(0, a(2), v(3))),
        );
        let c = closure_of(&q, &[r1, r2], &[Literal::constant(0, a(0), v(1))]);
        assert!(c.holds(&Literal::constant(0, a(2), v(3))));
    }
}
