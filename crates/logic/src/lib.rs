//! # gfd-logic — GFD semantics and reasoning
//!
//! Graph functional dependencies of *Discovering Graph Functional
//! Dependencies* (Fan et al., SIGMOD 2018): the dependency type and its
//! semantics (§2.2) plus the three reasoning problems of §3 via their
//! fixed-parameter-tractable characterisations:
//!
//! * [`literal`] — literals `x.A = c` / `x.A = y.B` and their satisfaction,
//! * [`gfd`] — `Q[x̄](X → l)` in normal form; positive/negative/trivial,
//! * [`closure`] — `closure(Σ_Q, X)` chase over `(var, attr)` terms,
//! * [`satisfiability`] — does `Σ` have a (non-vacuous) model?
//! * [`implication`] — `Σ ⊨ φ`,
//! * [`validation`] — `G ⊨ φ`, violation enumeration,
//! * [`order`] — the reduction order `φ₁ ≪ φ₂` behind reduced GFDs (§4.1),
//! * [`explain`] — curator-facing violation diagnoses (§1's use case).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod closure;
pub mod explain;
pub mod gfd;
pub mod implication;
pub mod literal;
pub mod order;
pub mod satisfiability;
pub mod text;
pub mod validation;

pub use closure::{closure_of, closure_of_refs, enforced, Closure, ClosureScratch};
pub use explain::{explain_match, explain_violations, Cause, Explanation};
pub use gfd::{Gfd, Rhs};
pub use implication::{equivalent, implied_by_rest, implies, implies_refs};
pub use literal::{normalize_literals, Literal};
pub use order::gfd_reduces;
pub use satisfiability::{is_satisfiable, satisfiable_witness};
pub use text::{parse_gfd, parse_rules, render_rules, RuleParseError};
pub use validation::{find_violations, match_satisfies, satisfies, satisfies_all, violating_nodes};
