//! The satisfiability problem for GFDs (§3).
//!
//! A set `Σ` is satisfiable when some graph `G` satisfies `Σ` **and** at
//! least one pattern of `Σ` has a match in `G` (so the set is not vacuous).
//! Following the characterisation used by the algorithm in the proof of
//! Theorem 1 (Lemma 3 of [Fan–Wu–Xu, SIGMOD'16]): `Σ` is satisfiable iff
//! there exists a GFD `Q[x̄](X → l)` in `Σ` whose `enforced(Σ_Q)` is not
//! conflicting.
//!
//! (The prose statement in §3 of the discovery paper says "for all
//! patterns"; its own proof — "return false if conflicting for *all* GFDs"
//! — and the original lemma use the existential form, which we follow. A
//! counterexample to the universal form: `Σ = {Q(∅→false), Q'(∅→l)}` with
//! `Q` not embeddable in `Q'` is satisfiable by a graph matching only `Q'`,
//! even though `enforced(Σ_Q)` conflicts.)

use crate::closure::enforced;
use crate::gfd::Gfd;

/// Decides satisfiability of `Σ` via the fixed-parameter-tractable
/// characterisation (Theorem 1(a)): `O(|Σ|² · k^k)`.
///
/// The empty set is unsatisfiable by definition (condition (b) requires a
/// GFD whose pattern matches).
pub fn is_satisfiable(sigma: &[Gfd]) -> bool {
    sigma
        .iter()
        .any(|phi| !enforced(phi.pattern(), sigma).is_conflicting())
}

/// Finds a witness GFD whose pattern can match in some model of `Σ`.
pub fn satisfiable_witness(sigma: &[Gfd]) -> Option<usize> {
    sigma
        .iter()
        .position(|phi| !enforced(phi.pattern(), sigma).is_conflicting())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Rhs;
    use crate::literal::Literal;
    use gfd_graph::{AttrId, LabelId, Value};
    use gfd_pattern::{End, Extension, PLabel, Pattern};

    fn l(i: u32) -> PLabel {
        PLabel::Is(LabelId(i))
    }

    #[test]
    fn empty_set_is_unsatisfiable() {
        assert!(!is_satisfiable(&[]));
    }

    #[test]
    fn single_positive_gfd_is_satisfiable() {
        let phi = Gfd::new(
            Pattern::edge(l(0), l(1), l(2)),
            vec![Literal::constant(1, AttrId(0), Value::Int(1))],
            Rhs::Lit(Literal::constant(0, AttrId(0), Value::Int(2))),
        );
        assert!(is_satisfiable(&[phi]));
    }

    #[test]
    fn contradictory_constants_unsatisfiable() {
        // Q(∅ → x.A=1) and Q(∅ → x.A=2) on the same single-node pattern.
        let q = Pattern::single(l(0));
        let a = Gfd::new(
            q.clone(),
            vec![],
            Rhs::Lit(Literal::constant(0, AttrId(0), Value::Int(1))),
        );
        let b = Gfd::new(
            q.clone(),
            vec![],
            Rhs::Lit(Literal::constant(0, AttrId(0), Value::Int(2))),
        );
        assert!(!is_satisfiable(&[a.clone(), b.clone()]));
        assert!(is_satisfiable(&[a]));
    }

    #[test]
    fn pure_negative_gfd_set_is_unsatisfiable() {
        // {Q3(∅→false)} alone: the only pattern may never match.
        let person = l(0);
        let parent = l(1);
        let q3 = Pattern::edge(person, parent, person).extend(&Extension {
            src: End::Var(1),
            dst: End::Var(0),
            label: parent,
        });
        let neg = Gfd::new(q3, vec![], Rhs::False);
        assert!(!is_satisfiable(&[neg]));
    }

    #[test]
    fn negative_plus_independent_positive_is_satisfiable() {
        // The documented counterexample to the universal-form prose: a graph
        // containing only the positive pattern satisfies both.
        let person = l(0);
        let parent = l(1);
        let q3 = Pattern::edge(person, parent, person).extend(&Extension {
            src: End::Var(1),
            dst: End::Var(0),
            label: parent,
        });
        let neg = Gfd::new(q3, vec![], Rhs::False);
        let pos = Gfd::new(
            Pattern::edge(l(2), l(3), l(4)),
            vec![],
            Rhs::Lit(Literal::constant(0, AttrId(0), Value::Int(1))),
        );
        let sigma = vec![neg, pos];
        assert!(is_satisfiable(&sigma));
        assert_eq!(satisfiable_witness(&sigma), Some(1));
    }

    #[test]
    fn negative_embedded_in_positive_pattern_conflicts() {
        // neg: single-edge Q(∅→false); pos on an extension of Q. The negative
        // GFD embeds into the positive's pattern, so no model can match the
        // positive's pattern either.
        let q = Pattern::edge(l(0), l(1), l(2));
        let neg = Gfd::new(q.clone(), vec![], Rhs::False);
        let q2 = q.extend(&Extension {
            src: End::Var(1),
            dst: End::New(l(3)),
            label: l(4),
        });
        let pos = Gfd::new(
            q2,
            vec![],
            Rhs::Lit(Literal::constant(2, AttrId(0), Value::Int(1))),
        );
        assert!(!is_satisfiable(&[neg, pos]));
    }
}
