//! Textual (de)serialisation of GFDs.
//!
//! Round-trips the human-readable display syntax, one rule per line:
//!
//! ```text
//! Q[x0:person*, x1:product; x0-create->x1](x1.type="film" -> x0.type="producer")
//! Q[x0:person*, x1:person; x0-parent->x1, x1-parent->x0](∅ -> false)
//! ```
//!
//! * node list: `x<i>:<label>` with `*` marking the pivot; `_` = wildcard;
//! * edge list: `x<i>-<label>->x<j>` (labels must not contain `->`);
//! * premises: `∅` (or `true`) or literals joined with ` ∧ ` (or ` & `);
//! * literals: `x<i>.<attr>="<string>"`, `x<i>.<attr>=<int>`, or
//!   `x<i>.<attr>=x<j>.<attr>`;
//! * consequence: a literal or `false`.
//!
//! Parsing interns labels/attributes/constants through the caller's
//! [`Interner`] — typically the graph the rules were mined from — so parsed
//! rules validate directly against that graph.

use gfd_graph::{Interner, Value};
use gfd_pattern::{PEdge, PLabel, Pattern};

use crate::gfd::{Gfd, Rhs};
use crate::literal::Literal;

/// Parse failure with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line number (0 for single-rule parsing).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuleParseError {}

fn err(message: impl Into<String>) -> RuleParseError {
    RuleParseError {
        line: 0,
        message: message.into(),
    }
}

/// Parses a variable reference `x<i>`, returning the index and the rest
/// of the string (shared with the extended-rule parser in `gfd-extended`).
pub fn parse_var(s: &str) -> Result<(usize, &str), RuleParseError> {
    let rest = s
        .strip_prefix('x')
        .ok_or_else(|| err(format!("expected variable `x<i>` at `{s}`")))?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return Err(err(format!("expected variable index at `{s}`")));
    }
    let idx: usize = digits.parse().map_err(|_| err("bad variable index"))?;
    Ok((idx, &rest[digits.len()..]))
}

fn parse_plabel(s: &str, interner: &Interner) -> PLabel {
    if s == "_" {
        PLabel::Wildcard
    } else {
        PLabel::Is(interner.label(s))
    }
}

/// Parses one literal, e.g. `x0.type="film"`, `x1.age=34`,
/// `x0.name=x1.name`.
fn parse_literal(s: &str, interner: &Interner) -> Result<Literal, RuleParseError> {
    let (var, rest) = parse_var(s.trim())?;
    let rest = rest
        .strip_prefix('.')
        .ok_or_else(|| err(format!("expected `.` after variable in `{s}`")))?;
    let eq = rest
        .find('=')
        .ok_or_else(|| err(format!("expected `=` in literal `{s}`")))?;
    let attr_name = &rest[..eq];
    if attr_name.is_empty() {
        return Err(err(format!("empty attribute in `{s}`")));
    }
    let attr = interner.attr(attr_name);
    let value_str = rest[eq + 1..].trim();
    if let Some(stripped) = value_str.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| err(format!("unterminated string in `{s}`")))?;
        return Ok(Literal::constant(
            var,
            attr,
            Value::Str(interner.symbol(inner)),
        ));
    }
    if value_str.starts_with('x') {
        let (var2, rest2) = parse_var(value_str)?;
        let attr2_name = rest2
            .strip_prefix('.')
            .ok_or_else(|| err(format!("expected `.` in `{value_str}`")))?;
        if attr2_name.is_empty() {
            return Err(err(format!("empty attribute in `{value_str}`")));
        }
        if (var, attr_name) == (var2, attr2_name) {
            return Err(err("literal equates a term with itself"));
        }
        return Ok(Literal::var_var(var, attr, var2, interner.attr(attr2_name)));
    }
    let int: i64 = value_str
        .parse()
        .map_err(|_| err(format!("expected quoted string, integer, or term in `{s}`")))?;
    Ok(Literal::constant(var, attr, Value::Int(int)))
}

/// Splits a rule `Q[<pattern>](<dependency>)` into its two bodies
/// (shared with the extended-rule parser in `gfd-extended`).
pub fn split_rule(s: &str) -> Result<(&str, &str), RuleParseError> {
    let s = s.trim();
    let body = s
        .strip_prefix("Q[")
        .ok_or_else(|| err("rule must start with `Q[`"))?;
    let close = body
        .find(']')
        .ok_or_else(|| err("missing `]` after pattern"))?;
    let pattern_str = &body[..close];
    let rest = body[close + 1..].trim();
    let dep = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| err("expected `(X -> l)` after pattern"))?;
    Ok((pattern_str, dep))
}

/// Parses the pattern body `x0:a, x1:b; x0-r->x1` (the text between `Q[`
/// and `]`): dense node list with `*` pivot marker, then edges.
pub fn parse_pattern_body(
    pattern_str: &str,
    interner: &Interner,
) -> Result<Pattern, RuleParseError> {
    let (nodes_str, edges_str) = match pattern_str.find(';') {
        Some(i) => (&pattern_str[..i], Some(&pattern_str[i + 1..])),
        None => (pattern_str, None),
    };
    let mut labels: Vec<PLabel> = Vec::new();
    let mut pivot: Option<usize> = None;
    for (slot, tok) in nodes_str.split(',').enumerate() {
        let tok = tok.trim();
        let (idx, rest) = parse_var(tok)?;
        if idx != slot {
            return Err(err(format!(
                "node variables must be dense: found x{idx} at position {slot}"
            )));
        }
        let mut label = rest
            .strip_prefix(':')
            .ok_or_else(|| err(format!("expected `:label` in `{tok}`")))?;
        if let Some(stripped) = label.strip_suffix('*') {
            if pivot.replace(idx).is_some() {
                return Err(err("multiple pivots marked"));
            }
            label = stripped;
        }
        labels.push(parse_plabel(label.trim(), interner));
    }
    let mut edges: Vec<PEdge> = Vec::new();
    if let Some(edges_str) = edges_str {
        for tok in edges_str.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (src, rest) = parse_var(tok)?;
            let rest = rest
                .strip_prefix('-')
                .ok_or_else(|| err(format!("expected `-label->` in `{tok}`")))?;
            let arrow = rest
                .rfind("->x")
                .ok_or_else(|| err(format!("expected `->x<j>` in `{tok}`")))?;
            let label = parse_plabel(rest[..arrow].trim(), interner);
            let (dst, tail) = parse_var(&rest[arrow + 2..])?;
            if !tail.is_empty() {
                return Err(err(format!("trailing characters `{tail}` in `{tok}`")));
            }
            if src >= labels.len() || dst >= labels.len() {
                return Err(err(format!("edge endpoint out of range in `{tok}`")));
            }
            edges.push(PEdge { src, dst, label });
        }
    }
    Ok(Pattern::new(labels, edges, pivot.unwrap_or(0)))
}

/// Parses one rule in display syntax.
pub fn parse_gfd(s: &str, interner: &Interner) -> Result<Gfd, RuleParseError> {
    let (pattern_str, dep) = split_rule(s)?;
    let pattern = parse_pattern_body(pattern_str, interner)?;
    let arrow = dep
        .rfind("->")
        .ok_or_else(|| err("missing `->` in dependency"))?;
    // Guard: the arrow must not be inside a quoted constant.
    let (lhs_str, rhs_str) = (dep[..arrow].trim(), dep[arrow + 2..].trim());
    let lhs_str = lhs_str.strip_suffix('-').map(str::trim).unwrap_or(lhs_str); // tolerate `-->` artifacts

    let mut lhs: Vec<Literal> = Vec::new();
    if !(lhs_str.is_empty() || lhs_str == "∅" || lhs_str == "true") {
        for part in lhs_str.split(['∧', '&']) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            lhs.push(parse_literal(part, interner)?);
        }
    }
    let rhs = if rhs_str == "false" {
        Rhs::False
    } else {
        Rhs::Lit(parse_literal(rhs_str, interner)?)
    };

    let max_var = lhs
        .iter()
        .map(Literal::max_var)
        .chain(match rhs {
            Rhs::Lit(l) => Some(l.max_var()),
            Rhs::False => None,
        })
        .max();
    if let Some(mv) = max_var {
        if mv >= pattern.node_count() {
            return Err(err(format!(
                "literal variable x{mv} exceeds pattern arity {}",
                pattern.node_count()
            )));
        }
    }
    Ok(Gfd::new(pattern, lhs, rhs))
}

/// Parses a rule file: one rule per line, `#` comments and blanks allowed.
pub fn parse_rules(text: &str, interner: &Interner) -> Result<Vec<Gfd>, RuleParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_gfd(line, interner) {
            Ok(g) => out.push(g),
            Err(mut e) => {
                e.line = i + 1;
                return Err(e);
            }
        }
    }
    Ok(out)
}

/// Renders a rule set, one per line (the inverse of [`parse_rules`]).
pub fn render_rules(rules: &[Gfd], interner: &Interner) -> String {
    let mut out = String::new();
    out.push_str("# gfd rules v1\n");
    for r in rules {
        out.push_str(&r.display(interner));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Interner, Gfd, Gfd, Gfd) {
        let i = Interner::new();
        let person = PLabel::Is(i.label("person"));
        let create = PLabel::Is(i.label("create"));
        let product = PLabel::Is(i.label("product"));
        let ty = i.attr("type");
        let name = i.attr("name");
        let q1 = Pattern::edge(person, create, product);
        let phi1 = Gfd::new(
            q1.clone(),
            vec![Literal::constant(1, ty, Value::Str(i.symbol("film")))],
            Rhs::Lit(Literal::constant(0, ty, Value::Str(i.symbol("producer")))),
        );
        let q2 = Pattern::new(
            vec![
                PLabel::Is(i.label("city")),
                PLabel::Wildcard,
                PLabel::Wildcard,
            ],
            vec![
                PEdge {
                    src: 0,
                    dst: 1,
                    label: PLabel::Is(i.label("located")),
                },
                PEdge {
                    src: 0,
                    dst: 2,
                    label: PLabel::Is(i.label("located")),
                },
            ],
            0,
        );
        let phi2 = Gfd::new(q2, vec![], Rhs::Lit(Literal::var_var(1, name, 2, name)));
        let parent = PLabel::Is(i.label("parent"));
        let q3 = Pattern::new(
            vec![person, person],
            vec![
                PEdge {
                    src: 0,
                    dst: 1,
                    label: parent,
                },
                PEdge {
                    src: 1,
                    dst: 0,
                    label: parent,
                },
            ],
            0,
        );
        let phi3 = Gfd::new(q3, vec![], Rhs::False);
        (i, phi1, phi2, phi3)
    }

    #[test]
    fn roundtrip_paper_rules() {
        let (i, phi1, phi2, phi3) = fixture();
        for phi in [&phi1, &phi2, &phi3] {
            let rendered = phi.display(&i);
            let parsed =
                parse_gfd(&rendered, &i).unwrap_or_else(|e| panic!("parse `{rendered}`: {e}"));
            assert_eq!(&parsed, phi, "roundtrip of `{rendered}`");
        }
    }

    #[test]
    fn roundtrip_rule_file() {
        let (i, phi1, phi2, phi3) = fixture();
        let rules = vec![phi1, phi2, phi3];
        let text = render_rules(&rules, &i);
        let parsed = parse_rules(&text, &i).unwrap();
        assert_eq!(parsed, rules);
    }

    #[test]
    fn parses_int_constants_and_ampersand() {
        let i = Interner::new();
        i.label("t");
        let g = parse_gfd("Q[x0:t*](x0.age=34 & x0.year=2001 -> x0.kind=\"old\")", &i).unwrap();
        assert_eq!(g.lhs().len(), 2);
        let age = i.lookup_attr("age").unwrap();
        assert!(g.lhs().contains(&Literal::constant(0, age, Value::Int(34))));
    }

    #[test]
    fn int_constants_roundtrip_with_their_type() {
        // Regression: integer constants used to render quoted, which the
        // parser read back as *strings* — silently changing semantics.
        let i = Interner::new();
        i.label("t");
        let age = i.attr("age");
        let phi = Gfd::new(
            Pattern::single(PLabel::Is(i.lookup_label("t").unwrap())),
            vec![Literal::constant(0, age, Value::Int(34))],
            Rhs::False,
        );
        let rendered = phi.display(&i);
        assert!(rendered.contains("x0.age=34"), "{rendered}");
        let parsed = parse_gfd(&rendered, &i).unwrap();
        assert_eq!(parsed, phi);
    }

    #[test]
    fn pivot_marker_respected() {
        let i = Interner::new();
        let g = parse_gfd("Q[x0:a, x1:b*; x0-r->x1](∅ -> false)", &i).unwrap();
        assert_eq!(g.pattern().pivot(), 1);
        // Default pivot is x0.
        let g2 = parse_gfd("Q[x0:a, x1:b; x0-r->x1](∅ -> false)", &i).unwrap();
        assert_eq!(g2.pattern().pivot(), 0);
    }

    #[test]
    fn errors_are_descriptive() {
        let i = Interner::new();
        assert!(parse_gfd("nope", &i).unwrap_err().message.contains("Q["));
        assert!(parse_gfd("Q[x0:a](x0.a=1 -> x5.b=2)", &i)
            .unwrap_err()
            .message
            .contains("exceeds pattern arity"));
        assert!(parse_gfd("Q[x1:a](∅ -> false)", &i)
            .unwrap_err()
            .message
            .contains("dense"));
        let err = parse_rules("# ok\nQ[x0:a](∅ -> false)\nbroken\n", &i).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn parsed_rules_validate_against_their_graph() {
        use gfd_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let john = b.add_node("person");
        let film = b.add_node("product");
        b.set_attr(john, "type", "high_jumper");
        b.set_attr(film, "type", "film");
        b.add_edge(john, film, "create");
        let g = b.build();
        let rule =
            "Q[x0:person*, x1:product; x0-create->x1](x1.type=\"film\" -> x0.type=\"producer\")";
        let phi = parse_gfd(rule, g.interner()).unwrap();
        assert!(!crate::validation::satisfies(&g, &phi));
    }

    #[test]
    fn wildcards_roundtrip() {
        let i = Interner::new();
        let g = parse_gfd("Q[x0:_*, x1:_; x0-_->x1](∅ -> x0.k=x1.k)", &i).unwrap();
        assert!(g.pattern().node_label(0).is_wildcard());
        assert!(g.pattern().edges()[0].label.is_wildcard());
        let rendered = g.display(&i);
        assert_eq!(parse_gfd(&rendered, &i).unwrap(), g);
    }
}
