//! Literals of `x̄` (§2.2): `x.A = c` and `x.A = y.B`.

use gfd_graph::{AttrId, Graph, Interner, NodeId, Value};
use gfd_pattern::Var;

/// A literal over the variables of a pattern.
///
/// Variable–variable literals are stored in normalised order
/// (`(var, attr)` pairs sorted), so syntactically equal constraints compare
/// and hash equal regardless of how they were written.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Literal {
    /// `x.A = c` — a constant binding (CFD-style, §2.2).
    Const {
        /// The variable `x`.
        var: Var,
        /// The attribute `A`.
        attr: AttrId,
        /// The constant `c`.
        value: Value,
    },
    /// `x.A = y.B` — a variable equality.
    VarVar {
        /// Lesser `(variable, attribute)` term.
        lvar: Var,
        /// Its attribute.
        lattr: AttrId,
        /// Greater `(variable, attribute)` term.
        rvar: Var,
        /// Its attribute.
        rattr: AttrId,
    },
}

impl Literal {
    /// Builds `x.A = c`.
    pub fn constant(var: Var, attr: AttrId, value: Value) -> Literal {
        Literal::Const { var, attr, value }
    }

    /// Builds `x.A = y.B`, normalising term order.
    ///
    /// # Panics
    /// Panics on the degenerate identity `x.A = x.A`.
    pub fn var_var(xvar: Var, xattr: AttrId, yvar: Var, yattr: AttrId) -> Literal {
        assert!(
            (xvar, xattr) != (yvar, yattr),
            "trivial literal x.A = x.A is not allowed"
        );
        if (xvar, xattr) <= (yvar, yattr) {
            Literal::VarVar {
                lvar: xvar,
                lattr: xattr,
                rvar: yvar,
                rattr: yattr,
            }
        } else {
            Literal::VarVar {
                lvar: yvar,
                lattr: yattr,
                rvar: xvar,
                rattr: xattr,
            }
        }
    }

    /// Variables mentioned by the literal.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        let (a, b) = match self {
            Literal::Const { var, .. } => (*var, None),
            Literal::VarVar { lvar, rvar, .. } => (*lvar, Some(*rvar)),
        };
        std::iter::once(a).chain(b)
    }

    /// Largest variable index mentioned.
    pub fn max_var(&self) -> Var {
        self.vars().max().expect("literal mentions a variable")
    }

    /// Applies the variable mapping `f` (total remap, e.g. an embedding
    /// image vector indexed by old variable).
    pub fn remap(&self, f: &[Var]) -> Literal {
        match *self {
            Literal::Const { var, attr, value } => Literal::Const {
                var: f[var],
                attr,
                value,
            },
            Literal::VarVar {
                lvar,
                lattr,
                rvar,
                rattr,
            } => Literal::var_var(f[lvar], lattr, f[rvar], rattr),
        }
    }

    /// Applies a partial variable mapping, failing when a mentioned variable
    /// was dropped (used after edge removal in pattern reduction).
    pub fn remap_partial(&self, f: &[Option<Var>]) -> Option<Literal> {
        match *self {
            Literal::Const { var, attr, value } => Some(Literal::Const {
                var: f[var]?,
                attr,
                value,
            }),
            Literal::VarVar {
                lvar,
                lattr,
                rvar,
                rattr,
            } => Some(Literal::var_var(f[lvar]?, lattr, f[rvar]?, rattr)),
        }
    }

    /// Whether match `m` satisfies the literal in `g` (§2.2): a constant
    /// literal needs the attribute present with exactly that value; a
    /// variable literal needs both attributes present and equal.
    pub fn satisfied(&self, m: &[NodeId], g: &Graph) -> bool {
        match *self {
            Literal::Const { var, attr, value } => g.attr(m[var], attr) == Some(value),
            Literal::VarVar {
                lvar,
                lattr,
                rvar,
                rattr,
            } => match (g.attr(m[lvar], lattr), g.attr(m[rvar], rattr)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// Human-readable rendering, e.g. `x0.type="film"`, `x1.age=34`, or
    /// `x1.name=x2.name`. Only string constants are quoted — the parser
    /// reads quoted tokens as strings, so quoting an integer would change
    /// its type across a round-trip.
    pub fn display(&self, interner: &Interner) -> String {
        match *self {
            Literal::Const { var, attr, value } => match value {
                Value::Int(i) => format!("x{}.{}={}", var, interner.attr_name(attr), i),
                Value::Str(_) => format!(
                    "x{}.{}=\"{}\"",
                    var,
                    interner.attr_name(attr),
                    value.display(interner)
                ),
            },
            Literal::VarVar {
                lvar,
                lattr,
                rvar,
                rattr,
            } => format!(
                "x{}.{}=x{}.{}",
                lvar,
                interner.attr_name(lattr),
                rvar,
                interner.attr_name(rattr)
            ),
        }
    }
}

/// Sorts and de-duplicates a literal set into canonical form.
pub fn normalize_literals(mut lits: Vec<Literal>) -> Vec<Literal> {
    lits.sort_unstable();
    lits.dedup();
    lits
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphBuilder;

    #[test]
    fn var_var_normalises() {
        let a = Literal::var_var(2, AttrId(0), 1, AttrId(3));
        let b = Literal::var_var(1, AttrId(3), 2, AttrId(0));
        assert_eq!(a, b);
        assert_eq!(a.max_var(), 2);
    }

    #[test]
    #[should_panic(expected = "trivial literal")]
    fn identity_literal_rejected() {
        let _ = Literal::var_var(0, AttrId(1), 0, AttrId(1));
    }

    #[test]
    fn satisfaction_semantics() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("person");
        let n1 = b.add_node("person");
        let n2 = b.add_node("person");
        b.set_attr(n0, "name", "ann");
        b.set_attr(n1, "name", "ann");
        b.set_attr(n2, "age", 5i64);
        let g = b.build();
        let name = g.interner().lookup_attr("name").unwrap();
        let age = g.interner().lookup_attr("age").unwrap();
        let ann = Value::Str(g.interner().lookup_symbol("ann").unwrap());

        let m = [n0, n1, n2];
        assert!(Literal::constant(0, name, ann).satisfied(&m, &g));
        assert!(!Literal::constant(2, name, ann).satisfied(&m, &g)); // attr missing
        assert!(Literal::var_var(0, name, 1, name).satisfied(&m, &g));
        // Missing attribute on either side fails a var-var literal.
        assert!(!Literal::var_var(0, name, 2, name).satisfied(&m, &g));
        assert!(Literal::constant(2, age, Value::Int(5)).satisfied(&m, &g));
        assert!(!Literal::constant(2, age, Value::Int(6)).satisfied(&m, &g));
    }

    #[test]
    fn remapping() {
        let lit = Literal::var_var(0, AttrId(1), 1, AttrId(2));
        let mapped = lit.remap(&[3, 2]);
        assert_eq!(mapped, Literal::var_var(2, AttrId(2), 3, AttrId(1)));

        let partial = lit.remap_partial(&[Some(0), None]);
        assert_eq!(partial, None);
        let c = Literal::constant(1, AttrId(0), Value::Int(1));
        assert_eq!(
            c.remap_partial(&[None, Some(0)]),
            Some(Literal::constant(0, AttrId(0), Value::Int(1)))
        );
    }

    #[test]
    fn normalization_dedups() {
        let a = Literal::constant(0, AttrId(0), Value::Int(1));
        let b = Literal::var_var(1, AttrId(0), 0, AttrId(0));
        let c = Literal::var_var(0, AttrId(0), 1, AttrId(0));
        let lits = normalize_literals(vec![b, a, c, a]);
        assert_eq!(lits.len(), 2);
        assert!(lits.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_forms() {
        let i = Interner::new();
        let name = i.attr("name");
        let v = Value::Str(i.symbol("film"));
        assert_eq!(
            Literal::constant(1, name, v).display(&i),
            "x1.name=\"film\""
        );
        assert_eq!(
            Literal::var_var(0, name, 1, name).display(&i),
            "x0.name=x1.name"
        );
    }
}
