//! The validation problem: `G ⊨ φ` and `G ⊨ Σ` (§3).
//!
//! A match `h(x̄)` violates `X → l` when `h(x̄) ⊨ X` but `h(x̄) ⊭ l`
//! (for `l = false`, `h(x̄) ⊨ X` alone violates). Validation enumerates
//! matches with the pivot-anchored matcher — `O(|Σ|·|G|^k)` (Proposition 2);
//! the problem is co-W\[1\]-hard in general (Theorem 1(b)), so enumeration is
//! the expected cost.

use std::ops::ControlFlow;

use gfd_graph::{FxHashSet, Graph, NodeId};
use gfd_pattern::{for_each_match, MatchSet};

use crate::gfd::{Gfd, Rhs};

/// Whether match `m` satisfies `X → l` of `phi` in `g`.
#[inline]
pub fn match_satisfies(phi: &Gfd, m: &[NodeId], g: &Graph) -> bool {
    if !phi.lhs().iter().all(|lit| lit.satisfied(m, g)) {
        return true; // X fails ⇒ implication holds vacuously
    }
    match phi.rhs() {
        Rhs::Lit(l) => l.satisfied(m, g),
        Rhs::False => false,
    }
}

/// Decides `G ⊨ φ` with early exit on the first violation.
pub fn satisfies(g: &Graph, phi: &Gfd) -> bool {
    !for_each_match(phi.pattern(), g, |m| {
        if match_satisfies(phi, m, g) {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    })
    .is_break()
}

/// Decides `G ⊨ Σ`.
pub fn satisfies_all(g: &Graph, sigma: &[Gfd]) -> bool {
    sigma.iter().all(|phi| satisfies(g, phi))
}

/// Collects violating matches of `phi` in `g`, up to `limit` (all when
/// `None`).
pub fn find_violations(g: &Graph, phi: &Gfd, limit: Option<usize>) -> MatchSet {
    let mut out = MatchSet::new(phi.pattern().node_count());
    let cap = limit.unwrap_or(usize::MAX);
    let _ = for_each_match(phi.pattern(), g, |m| {
        if !match_satisfies(phi, m, g) {
            out.push(m);
            if out.len() >= cap {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    out
}

/// All nodes participating in at least one violation of some GFD of `Σ`
/// (the violation set `V^GFD` used by the error-detection accuracy
/// experiment, Exp-5 §7).
pub fn violating_nodes(g: &Graph, sigma: &[Gfd]) -> FxHashSet<NodeId> {
    let mut out: FxHashSet<NodeId> = FxHashSet::default();
    for phi in sigma {
        let _ = for_each_match(phi.pattern(), g, |m| {
            if !match_satisfies(phi, m, g) {
                out.extend(m.iter().copied());
            }
            ControlFlow::Continue(())
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use gfd_graph::{GraphBuilder, Value};
    use gfd_pattern::{End, Extension, PLabel, Pattern};

    /// Builds the paper's Fig. 1 graphs G1, G2, G3 in one graph per case and
    /// checks φ1, φ2, φ3 (Examples 1 and 3).
    fn labels(g: &Graph, name: &str) -> PLabel {
        PLabel::Is(g.interner().label(name))
    }

    #[test]
    fn phi1_catches_g1() {
        // G1: John Winter (high jumper) credited with creating a film.
        let mut b = GraphBuilder::new();
        let john = b.add_node("person");
        let film = b.add_node("product");
        b.set_attr(john, "type", "high_jumper");
        b.set_attr(film, "type", "film");
        b.add_edge(john, film, "create");
        let g = b.build();

        let ty = g.interner().attr("type");
        let filmv = Value::Str(g.interner().symbol("film"));
        let producer = Value::Str(g.interner().symbol("producer"));
        let q1 = Pattern::edge(
            labels(&g, "person"),
            labels(&g, "create"),
            labels(&g, "product"),
        );
        let phi1 = Gfd::new(
            q1,
            vec![Literal::constant(1, ty, filmv)],
            Rhs::Lit(Literal::constant(0, ty, producer)),
        );
        assert!(!satisfies(&g, &phi1));
        let viols = find_violations(&g, &phi1, None);
        assert_eq!(viols.len(), 1);
        assert_eq!(viols.get(0), &[john, film]);
        let nodes = violating_nodes(&g, std::slice::from_ref(&phi1));
        assert!(nodes.contains(&john) && nodes.contains(&film));

        // Fixing the type satisfies φ1.
        let mut b = GraphBuilder::new();
        let jack = b.add_node("person");
        let film2 = b.add_node("product");
        b.set_attr(jack, "type", "producer");
        b.set_attr(film2, "type", "film");
        b.add_edge(jack, film2, "create");
        let g2 = b.build();
        let q1b = Pattern::edge(
            labels(&g2, "person"),
            labels(&g2, "create"),
            labels(&g2, "product"),
        );
        let ty2 = g2.interner().attr("type");
        let phi1b = Gfd::new(
            q1b,
            vec![Literal::constant(
                1,
                ty2,
                Value::Str(g2.interner().symbol("film")),
            )],
            Rhs::Lit(Literal::constant(
                0,
                ty2,
                Value::Str(g2.interner().symbol("producer")),
            )),
        );
        assert!(satisfies(&g2, &phi1b));
    }

    #[test]
    fn phi2_catches_g2() {
        // G2: Saint Petersburg located in both Russia and Florida.
        let mut b = GraphBuilder::new();
        let sp = b.add_node("city");
        let ru = b.add_node("country");
        let fl = b.add_node("city");
        b.set_attr(ru, "name", "Russia");
        b.set_attr(fl, "name", "Florida");
        b.add_edge(sp, ru, "located");
        b.add_edge(sp, fl, "located");
        let g = b.build();

        let name = g.interner().attr("name");
        let q2 = Pattern::new(
            vec![labels(&g, "city"), PLabel::Wildcard, PLabel::Wildcard],
            vec![
                gfd_pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: labels(&g, "located"),
                },
                gfd_pattern::PEdge {
                    src: 0,
                    dst: 2,
                    label: labels(&g, "located"),
                },
            ],
            0,
        );
        let phi2 = Gfd::new(q2, vec![], Rhs::Lit(Literal::var_var(1, name, 2, name)));
        assert!(!satisfies(&g, &phi2));
        // Both (y=Russia, z=Florida) and the swap violate.
        assert_eq!(find_violations(&g, &phi2, None).len(), 2);
        // The limit caps enumeration.
        assert_eq!(find_violations(&g, &phi2, Some(1)).len(), 1);
    }

    #[test]
    fn phi3_catches_g3() {
        // G3: two persons each parent of the other.
        let mut b = GraphBuilder::new();
        let owen = b.add_node("person");
        let john = b.add_node("person");
        b.add_edge(owen, john, "parent");
        b.add_edge(john, owen, "parent");
        let g = b.build();

        let person = labels(&g, "person");
        let parent = labels(&g, "parent");
        let q3 = Pattern::edge(person, parent, person).extend(&Extension {
            src: End::Var(1),
            dst: End::Var(0),
            label: parent,
        });
        let phi3 = Gfd::new(q3, vec![], Rhs::False);
        assert!(!satisfies(&g, &phi3));
        assert!(phi3.is_negative());

        // A healthy parent chain does not violate φ3.
        let mut b = GraphBuilder::new();
        let a = b.add_node("person");
        let c = b.add_node("person");
        b.add_edge(a, c, "parent");
        let g2 = b.build();
        let person2 = labels(&g2, "person");
        let parent2 = labels(&g2, "parent");
        let q3b = Pattern::edge(person2, parent2, person2).extend(&Extension {
            src: End::Var(1),
            dst: End::Var(0),
            label: parent2,
        });
        let phi3b = Gfd::new(q3b, vec![], Rhs::False);
        assert!(satisfies(&g2, &phi3b));
    }

    #[test]
    fn missing_lhs_attribute_satisfies_vacuously() {
        // §2.2 (1): X references an absent attribute ⇒ implication holds.
        let mut b = GraphBuilder::new();
        let x = b.add_node("t");
        let y = b.add_node("t");
        b.add_edge(x, y, "r");
        let g = b.build();
        let a = g.interner().attr("a");
        let q = Pattern::edge(labels(&g, "t"), labels(&g, "r"), labels(&g, "t"));
        let phi = Gfd::new(
            q,
            vec![Literal::constant(0, a, Value::Int(1))],
            Rhs::Lit(Literal::constant(1, a, Value::Int(2))),
        );
        assert!(satisfies(&g, &phi));
    }

    #[test]
    fn missing_rhs_attribute_violates() {
        // §2.2 (1): if X holds, the RHS attribute must exist.
        let mut b = GraphBuilder::new();
        let x = b.add_node("t");
        let y = b.add_node("t");
        b.set_attr(x, "a", 1i64);
        b.add_edge(x, y, "r");
        let g = b.build();
        let a = g.interner().attr("a");
        let q = Pattern::edge(labels(&g, "t"), labels(&g, "r"), labels(&g, "t"));
        let phi = Gfd::new(
            q,
            vec![Literal::constant(0, a, Value::Int(1))],
            Rhs::Lit(Literal::constant(1, a, Value::Int(1))),
        );
        assert!(!satisfies(&g, &phi));
    }

    #[test]
    fn satisfies_all_short_circuits() {
        let g = GraphBuilder::new().build();
        assert!(satisfies_all(&g, &[]));
    }
}
