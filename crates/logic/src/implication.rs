//! The implication problem for GFDs (§3).
//!
//! `Σ ⊨ φ` for `φ = Q[x̄](X → l)` iff `closure(Σ_Q, X)` is conflicting or
//! `l ∈ closure(Σ_Q, X)` (Lemma 7 of [Fan–Wu–Xu, SIGMOD'16], restated in
//! §3). The closure applies all GFDs of `Σ` embedded in `Q` to a fixpoint,
//! so the check is fixed-parameter tractable in `k = |x̄|` (Theorem 1(a)).

use crate::closure::closure_of_refs;
use crate::gfd::{Gfd, Rhs};

/// Decides `Σ ⊨ φ`.
pub fn implies(sigma: &[Gfd], phi: &Gfd) -> bool {
    implies_refs(sigma.iter(), phi)
}

/// [`implies`] over borrowed GFDs — cover computation passes filtered views
/// of `Σ` without cloning.
pub fn implies_refs<'a>(sigma: impl IntoIterator<Item = &'a Gfd>, phi: &Gfd) -> bool {
    let c = closure_of_refs(phi.pattern(), sigma, phi.lhs());
    if c.is_conflicting() {
        return true;
    }
    match phi.rhs() {
        Rhs::Lit(l) => c.holds(&l),
        Rhs::False => false,
    }
}

/// Whether two rule sets are equivalent (`Σ ≡ Σ'`, §2.2): each implies
/// every member of the other. Used to check that covers preserve meaning.
pub fn equivalent(sigma: &[Gfd], other: &[Gfd]) -> bool {
    other.iter().all(|phi| implies(sigma, phi)) && sigma.iter().all(|phi| implies(other, phi))
}

/// Decides `Σ \ {σ_i} ⊨ σ_i` without materialising the reduced slice
/// (used by cover computation; `skip` is the index of the candidate).
pub fn implied_by_rest(sigma: &[Gfd], skip: usize) -> bool {
    implies_refs(
        sigma
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, g)| g),
        &sigma[skip],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use gfd_graph::{AttrId, LabelId, Value};
    use gfd_pattern::{End, Extension, PLabel, Pattern};

    fn l(i: u32) -> PLabel {
        PLabel::Is(LabelId(i))
    }

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn gfd_implies_itself() {
        let phi = Gfd::new(
            Pattern::edge(l(0), l(1), l(2)),
            vec![Literal::constant(1, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(0), v(2))),
        );
        assert!(implies(std::slice::from_ref(&phi), &phi));
        assert!(!implies(&[], &phi));
    }

    #[test]
    fn weaker_premises_imply_stronger() {
        // σ: Q(∅ → x0.A=1) implies φ: Q(x1.B=9 → x0.A=1).
        let q = Pattern::edge(l(0), l(1), l(2));
        let sigma = Gfd::new(
            q.clone(),
            vec![],
            Rhs::Lit(Literal::constant(0, a(0), v(1))),
        );
        let phi = Gfd::new(
            q.clone(),
            vec![Literal::constant(1, a(1), v(9))],
            Rhs::Lit(Literal::constant(0, a(0), v(1))),
        );
        assert!(implies(std::slice::from_ref(&sigma), &phi));
        // The converse fails.
        assert!(!implies(&[phi], &sigma));
    }

    #[test]
    fn smaller_pattern_implies_larger() {
        // σ on single-edge Q embeds into φ's extended pattern Q'.
        let q = Pattern::edge(l(0), l(1), l(2));
        let q2 = q.extend(&Extension {
            src: End::Var(1),
            dst: End::New(l(3)),
            label: l(4),
        });
        let sigma = Gfd::new(
            q,
            vec![Literal::constant(1, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(0), v(2))),
        );
        let phi = Gfd::new(
            q2,
            vec![Literal::constant(1, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(0), v(2))),
        );
        assert!(implies(std::slice::from_ref(&sigma), &phi));
        // Larger-pattern GFD does not imply the smaller one.
        let (small, big) = (sigma, phi);
        assert!(!implies(&[big], &small));
    }

    #[test]
    fn transitivity_chain() {
        // A=1→B=2 and B=2→C=3 imply A=1→C=3 on the same pattern.
        let q = Pattern::single(PLabel::Wildcard);
        let r1 = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(1), v(2))),
        );
        let r2 = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(1), v(2))],
            Rhs::Lit(Literal::constant(0, a(2), v(3))),
        );
        let phi = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(2), v(3))),
        );
        assert!(implies(&[r1.clone(), r2.clone()], &phi));
        assert!(!implies(&[r1], &phi));
    }

    #[test]
    fn conflicting_premises_imply_anything() {
        let q = Pattern::single(l(0));
        let phi = Gfd::new(
            q,
            vec![
                Literal::constant(0, a(0), v(1)),
                Literal::constant(0, a(0), v(2)),
            ],
            Rhs::Lit(Literal::constant(0, a(5), v(9))),
        );
        assert!(implies(&[], &phi));
    }

    #[test]
    fn negative_gfd_implication() {
        // σ: Q(X→false) implies φ: Q(X ∪ {more} → false).
        let q = Pattern::edge(l(0), l(1), l(0));
        let x = Literal::constant(0, a(0), v(1));
        let y = Literal::constant(1, a(0), v(2));
        let sigma = Gfd::new(q.clone(), vec![x], Rhs::False);
        let phi = Gfd::new(q.clone(), vec![x, y], Rhs::False);
        assert!(implies(std::slice::from_ref(&sigma), &phi));
        assert!(!implies(&[phi], &sigma));
        // A negative GFD is not implied by an empty set.
        assert!(!implies(&[], &sigma));
    }

    #[test]
    fn wildcard_gfd_implies_concrete_instance() {
        // σ on _-_->_ pattern implies the person-create->product instance.
        let wild = Pattern::edge(PLabel::Wildcard, PLabel::Wildcard, PLabel::Wildcard);
        let concrete = Pattern::edge(l(0), l(1), l(2));
        let dep = (
            vec![Literal::constant(1, a(0), v(1))],
            Literal::constant(0, a(0), v(2)),
        );
        let sigma = Gfd::new(wild, dep.0.clone(), Rhs::Lit(dep.1));
        let phi = Gfd::new(concrete, dep.0, Rhs::Lit(dep.1));
        assert!(implies(std::slice::from_ref(&sigma), &phi));
        assert!(!implies(&[phi], &sigma));
    }

    #[test]
    fn equivalence_of_covers() {
        let q = Pattern::single(PLabel::Wildcard);
        let ab = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(1), v(2))),
        );
        let bc = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(1), v(2))],
            Rhs::Lit(Literal::constant(0, a(2), v(3))),
        );
        let ac = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(0), v(1))],
            Rhs::Lit(Literal::constant(0, a(2), v(3))),
        );
        let full = vec![ab.clone(), bc.clone(), ac];
        let cover = vec![ab.clone(), bc];
        assert!(equivalent(&full, &cover));
        assert!(!equivalent(&[ab], &full));
        assert!(equivalent(&[], &[]));
    }

    #[test]
    fn implied_by_rest_views() {
        let q = Pattern::single(PLabel::Wildcard);
        let r = Gfd::new(
            q.clone(),
            vec![],
            Rhs::Lit(Literal::constant(0, a(0), v(1))),
        );
        let dup = r.clone();
        let other = Gfd::new(
            q.clone(),
            vec![],
            Rhs::Lit(Literal::constant(0, a(1), v(2))),
        );
        let sigma = vec![r, dup, other];
        assert!(implied_by_rest(&sigma, 0));
        assert!(implied_by_rest(&sigma, 1));
        assert!(!implied_by_rest(&sigma, 2));
    }
}
