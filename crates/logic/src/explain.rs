//! Violation diagnosis for consistency checking (§1's use case).
//!
//! `G ⊭ φ` tells a curator *that* entities are inconsistent; repairing a
//! knowledge base needs *why*: which match, which literal of the
//! consequence failed, and what values the entities actually carry (the
//! paper's Fig. 1 walk-throughs are exactly such diagnoses — "John is a
//! high jumper, not a producer"). This module turns violations into
//! structured, renderable explanations.

use std::ops::ControlFlow;

use gfd_graph::{Graph, NodeId, Value};
use gfd_pattern::for_each_match;

use crate::gfd::{Gfd, Rhs};
use crate::literal::Literal;

/// Why a specific match violates a GFD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cause {
    /// The consequence literal failed; carries the observed values of its
    /// left and right terms (`None` = attribute absent).
    RhsFailed {
        /// The failed literal.
        literal: Literal,
        /// Observed value of the literal's first term.
        left: Option<Value>,
        /// Observed value of the second term (`None` for constants means
        /// the attribute is missing; for constant literals this echoes the
        /// expected constant).
        right: Option<Value>,
    },
    /// A negative GFD triggered: the premises hold on a structure that the
    /// rule declares illegal.
    ForbiddenStructure,
}

/// One diagnosed violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explanation {
    /// The violating match `h(x̄)`.
    pub assignment: Vec<NodeId>,
    /// The reason.
    pub cause: Cause,
}

impl Explanation {
    /// Renders a curator-facing one-liner, e.g.
    /// `match [n0, n1]: x0.type is "high_jumper", expected "producer"`.
    pub fn display(&self, phi: &Gfd, g: &Graph) -> String {
        let interner = g.interner();
        let nodes = self
            .assignment
            .iter()
            .map(|n| format!("n{}", n.index()))
            .collect::<Vec<_>>()
            .join(", ");
        match &self.cause {
            Cause::ForbiddenStructure => format!(
                "match [{nodes}]: forbidden structure {} exists",
                phi.pattern().display(interner)
            ),
            Cause::RhsFailed {
                literal,
                left,
                right,
            } => {
                let show = |v: &Option<Value>| match v {
                    Some(v) => format!("\"{}\"", v.display(interner)),
                    None => "<absent>".to_owned(),
                };
                match literal {
                    Literal::Const { var, attr, value } => format!(
                        "match [{nodes}]: x{var}.{} is {}, expected \"{}\"",
                        interner.attr_name(*attr),
                        show(left),
                        value.display(interner)
                    ),
                    Literal::VarVar {
                        lvar,
                        lattr,
                        rvar,
                        rattr,
                    } => format!(
                        "match [{nodes}]: x{lvar}.{} = {} but x{rvar}.{} = {}",
                        interner.attr_name(*lattr),
                        show(left),
                        interner.attr_name(*rattr),
                        show(right)
                    ),
                }
            }
        }
    }
}

/// Diagnoses one match against `phi`; `None` when the match satisfies it.
pub fn explain_match(phi: &Gfd, m: &[NodeId], g: &Graph) -> Option<Explanation> {
    if !phi.lhs().iter().all(|lit| lit.satisfied(m, g)) {
        return None; // premises fail: vacuously satisfied
    }
    match phi.rhs() {
        Rhs::False => Some(Explanation {
            assignment: m.to_vec(),
            cause: Cause::ForbiddenStructure,
        }),
        Rhs::Lit(l) => {
            if l.satisfied(m, g) {
                return None;
            }
            let (left, right) = match l {
                Literal::Const { var, attr, value } => (g.attr(m[var], attr), Some(value)),
                Literal::VarVar {
                    lvar,
                    lattr,
                    rvar,
                    rattr,
                } => (g.attr(m[lvar], lattr), g.attr(m[rvar], rattr)),
            };
            Some(Explanation {
                assignment: m.to_vec(),
                cause: Cause::RhsFailed {
                    literal: l,
                    left,
                    right,
                },
            })
        }
    }
}

/// Diagnoses up to `limit` violations of `phi` in `g`.
pub fn explain_violations(g: &Graph, phi: &Gfd, limit: usize) -> Vec<Explanation> {
    let mut out = Vec::new();
    let _ = for_each_match(phi.pattern(), g, |m| {
        if let Some(e) = explain_match(phi, m, g) {
            out.push(e);
            if out.len() >= limit {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphBuilder;
    use gfd_pattern::{End, Extension, PLabel, Pattern};

    fn fig1_g1() -> (Graph, Gfd) {
        let mut b = GraphBuilder::new();
        let john = b.add_node("person");
        let film = b.add_node("product");
        b.set_attr(john, "type", "high_jumper");
        b.set_attr(film, "type", "film");
        b.add_edge(john, film, "create");
        let g = b.build();
        let i = g.interner();
        let q = Pattern::edge(
            PLabel::Is(i.label("person")),
            PLabel::Is(i.label("create")),
            PLabel::Is(i.label("product")),
        );
        let ty = i.attr("type");
        let phi = Gfd::new(
            q,
            vec![Literal::constant(1, ty, Value::Str(i.symbol("film")))],
            Rhs::Lit(Literal::constant(0, ty, Value::Str(i.symbol("producer")))),
        );
        (g, phi)
    }

    #[test]
    fn explains_constant_mismatch() {
        let (g, phi) = fig1_g1();
        let ex = explain_violations(&g, &phi, 10);
        assert_eq!(ex.len(), 1);
        let msg = ex[0].display(&phi, &g);
        assert!(msg.contains("high_jumper"), "{msg}");
        assert!(msg.contains("expected \"producer\""), "{msg}");
        match &ex[0].cause {
            Cause::RhsFailed { left, .. } => {
                assert_eq!(
                    *left,
                    Some(Value::Str(
                        g.interner().lookup_symbol("high_jumper").unwrap()
                    ))
                );
            }
            other => panic!("unexpected cause {other:?}"),
        }
    }

    #[test]
    fn explains_missing_attribute() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("person");
        let f = b.add_node("product");
        b.set_attr(f, "type", "film");
        b.add_edge(x, f, "create");
        let g = b.build();
        let i = g.interner();
        let ty = i.lookup_attr("type").unwrap();
        let q = Pattern::edge(
            PLabel::Is(i.label("person")),
            PLabel::Is(i.label("create")),
            PLabel::Is(i.label("product")),
        );
        let phi = Gfd::new(
            q,
            vec![Literal::constant(1, ty, Value::Str(i.symbol("film")))],
            Rhs::Lit(Literal::constant(0, ty, Value::Str(i.symbol("producer")))),
        );
        let ex = explain_violations(&g, &phi, 10);
        assert_eq!(ex.len(), 1);
        let msg = ex[0].display(&phi, &g);
        assert!(msg.contains("<absent>"), "{msg}");
    }

    #[test]
    fn explains_var_var_disagreement() {
        let mut b = GraphBuilder::new();
        let sp = b.add_node("city");
        let ru = b.add_node("country");
        let fl = b.add_node("city");
        b.set_attr(ru, "name", "Russia");
        b.set_attr(fl, "name", "Florida");
        b.add_edge(sp, ru, "located");
        b.add_edge(sp, fl, "located");
        let g = b.build();
        let i = g.interner();
        let name = i.lookup_attr("name").unwrap();
        let q = Pattern::new(
            vec![
                PLabel::Is(i.label("city")),
                PLabel::Wildcard,
                PLabel::Wildcard,
            ],
            vec![
                gfd_pattern::PEdge {
                    src: 0,
                    dst: 1,
                    label: PLabel::Is(i.label("located")),
                },
                gfd_pattern::PEdge {
                    src: 0,
                    dst: 2,
                    label: PLabel::Is(i.label("located")),
                },
            ],
            0,
        );
        let phi = Gfd::new(q, vec![], Rhs::Lit(Literal::var_var(1, name, 2, name)));
        let ex = explain_violations(&g, &phi, 1);
        assert_eq!(ex.len(), 1);
        let msg = ex[0].display(&phi, &g);
        assert!(msg.contains("Russia") || msg.contains("Florida"), "{msg}");
    }

    #[test]
    fn explains_forbidden_structure() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("person");
        let y = b.add_node("person");
        b.add_edge(x, y, "parent");
        b.add_edge(y, x, "parent");
        let g = b.build();
        let i = g.interner();
        let person = PLabel::Is(i.label("person"));
        let parent = PLabel::Is(i.label("parent"));
        let q = Pattern::edge(person, parent, person).extend(&Extension {
            src: End::Var(1),
            dst: End::Var(0),
            label: parent,
        });
        let phi = Gfd::new(q, vec![], Rhs::False);
        let ex = explain_violations(&g, &phi, 10);
        assert_eq!(ex.len(), 2); // both orientations
        assert!(matches!(ex[0].cause, Cause::ForbiddenStructure));
        assert!(ex[0].display(&phi, &g).contains("forbidden structure"));
    }

    #[test]
    fn satisfied_matches_yield_nothing() {
        let (g, phi) = fig1_g1();
        // Vacuous match: premise fails → no explanation.
        let weak = Gfd::new(
            phi.pattern().clone(),
            vec![Literal::constant(
                1,
                g.interner().lookup_attr("type").unwrap(),
                Value::Int(424_242),
            )],
            phi.rhs(),
        );
        assert!(explain_violations(&g, &weak, 10).is_empty());
    }
}
