//! The GFD reduction order `φ₁ ≪ φ₂` (§4.1).
//!
//! For positive GFDs `φ₁ = Q₁[x̄₁](X₁ → l₁)` and `φ₂ = Q₂[x̄₂](X₂ → l₂)`:
//! `φ₁ ≪ φ₂` iff there is an isomorphism `f` from `Q₁` to a subgraph of
//! `Q₂` such that (a) `f` preserves pivots, (b) `f(X₁) ⊆ X₂` and
//! `f(l₁) = l₂`, and (c) `Q₁ ≪ Q₂` via `f` *or* `f(X₁) ⊊ X₂`.
//! Intuitively: `φ₁` imposes the same consequence with weaker topology or
//! weaker premises, making `φ₂` redundant when `φ₁` holds.

use std::ops::ControlFlow;

use gfd_pattern::{for_each_embedding, strictly_reducing, EmbedOptions, Var};

use crate::gfd::{Gfd, Rhs};
use crate::literal::Literal;

/// Decides `phi1 ≪ phi2`. Negative GFDs have their own minimality notion
/// (§4.1, "reduced negative GFDs"); comparing a negative against anything
/// returns `false` here except pairs of negatives with matching `false`
/// consequences, which reduce through the same pattern/premise conditions.
pub fn gfd_reduces(phi1: &Gfd, phi2: &Gfd) -> bool {
    match (phi1.rhs(), phi2.rhs()) {
        (Rhs::Lit(_), Rhs::Lit(_)) | (Rhs::False, Rhs::False) => {}
        _ => return false,
    }
    let mut found = false;
    let _ = for_each_embedding(
        phi1.pattern(),
        phi2.pattern(),
        EmbedOptions {
            preserve_pivot: true,
        },
        |f| {
            if witnesses_reduction(phi1, phi2, f) {
                found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    found
}

fn witnesses_reduction(phi1: &Gfd, phi2: &Gfd, f: &[Var]) -> bool {
    // (b) f(X1) ⊆ X2 and f(l1) = l2.
    let mapped: Vec<Literal> = phi1.lhs().iter().map(|l| l.remap(f)).collect();
    if !mapped.iter().all(|l| phi2.lhs().contains(l)) {
        return false;
    }
    match (phi1.rhs(), phi2.rhs()) {
        (Rhs::Lit(l1), Rhs::Lit(l2)) => {
            if l1.remap(f) != l2 {
                return false;
            }
        }
        (Rhs::False, Rhs::False) => {}
        _ => return false,
    }
    // (c) strictly smaller pattern via f, or strictly fewer premises.
    strictly_reducing(phi1.pattern(), phi2.pattern(), f) || mapped.len() < phi2.lhs().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{AttrId, LabelId, Value};
    use gfd_pattern::{End, Extension, PLabel, Pattern};

    fn l(i: u32) -> PLabel {
        PLabel::Is(LabelId(i))
    }

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    /// Example 4 of the paper: φ1 ≪ φ1¹ (pattern + premise extension), but
    /// φ1 ⋘̸ φ1² (premises not a superset).
    #[test]
    fn example_4() {
        let q1 = Pattern::edge(l(0), l(1), l(2)); // person -create-> product
        let x1 = Literal::constant(1, a(0), v(10)); // y.type = film
        let rhs = Literal::constant(0, a(0), v(20)); // x.type = producer
        let phi1 = Gfd::new(q1.clone(), vec![x1], Rhs::Lit(rhs));

        // Q1^1: add award node z; X^1 = X1 ∪ {y.name = 'Selling out'}.
        let q11 = q1.extend(&Extension {
            src: End::Var(1),
            dst: End::New(l(3)),
            label: l(4),
        });
        let selling_out = Literal::constant(1, a(1), v(30));
        let phi11 = Gfd::new(q11.clone(), vec![x1, selling_out], Rhs::Lit(rhs));
        assert!(gfd_reduces(&phi1, &phi11));
        assert!(!gfd_reduces(&phi11, &phi1));

        // φ1²: X^2 = {y.name='Selling out'} only — X1 ⊄ X², so φ1 ⋘̸ φ1².
        let phi12 = Gfd::new(q11, vec![selling_out], Rhs::Lit(rhs));
        assert!(!gfd_reduces(&phi1, &phi12));
    }

    #[test]
    fn premise_subset_reduces_on_same_pattern() {
        let q = Pattern::edge(l(0), l(1), l(2));
        let x1 = Literal::constant(1, a(0), v(1));
        let x2 = Literal::constant(0, a(1), v(2));
        let rhs = Literal::constant(0, a(0), v(3));
        let weak = Gfd::new(q.clone(), vec![x1], Rhs::Lit(rhs));
        let strong = Gfd::new(q.clone(), vec![x1, x2], Rhs::Lit(rhs));
        assert!(gfd_reduces(&weak, &strong));
        assert!(!gfd_reduces(&strong, &weak));
        // Equal GFDs do not reduce each other (strictness).
        assert!(!gfd_reduces(&weak, &weak));
    }

    #[test]
    fn wildcard_upgrade_reduces() {
        let q = Pattern::edge(l(0), l(1), l(2));
        let rhs = Literal::constant(0, a(0), v(3));
        let concrete = Gfd::new(q.clone(), vec![], Rhs::Lit(rhs));
        let wild = Gfd::new(q.upgrade_node(1), vec![], Rhs::Lit(rhs));
        assert!(gfd_reduces(&wild, &concrete));
        assert!(!gfd_reduces(&concrete, &wild));
    }

    #[test]
    fn pivot_must_be_preserved() {
        // Same single-node consequence, but pivots at structurally
        // *different* positions (distinct labels force the image).
        let q_at_src = Pattern::edge(l(0), l(1), l(2)); // pivot = x0 (label 0)
        let q_at_dst = q_at_src.with_pivot(1);
        let rhs_src = Literal::constant(0, a(0), v(1));
        let phi_src = Gfd::new(Pattern::single(l(0)), vec![], Rhs::Lit(rhs_src));
        // Embeds into q_at_src preserving pivot.
        let host_src = Gfd::new(q_at_src, vec![], Rhs::Lit(rhs_src));
        assert!(gfd_reduces(&phi_src, &host_src));
        // Does NOT reduce the dst-pivoted variant: pivot would land on x1.
        let host_dst = Gfd::new(q_at_dst, vec![], Rhs::Lit(rhs_src));
        assert!(!gfd_reduces(&phi_src, &host_dst));
    }

    #[test]
    fn mismatched_rhs_blocks_reduction() {
        let q = Pattern::edge(l(0), l(1), l(2));
        let r1 = Gfd::new(
            q.clone(),
            vec![],
            Rhs::Lit(Literal::constant(0, a(0), v(1))),
        );
        let r2 = Gfd::new(
            q.clone(),
            vec![],
            Rhs::Lit(Literal::constant(0, a(0), v(2))),
        );
        assert!(!gfd_reduces(&r1, &r2));
        let neg = Gfd::new(
            q.clone(),
            vec![Literal::constant(0, a(0), v(1))],
            Rhs::False,
        );
        assert!(!gfd_reduces(&r1, &neg));
        assert!(!gfd_reduces(&neg, &r1));
    }

    #[test]
    fn negative_pair_reduction() {
        let q = Pattern::edge(l(0), l(1), l(0));
        let x = Literal::constant(0, a(0), v(1));
        let y = Literal::constant(1, a(0), v(2));
        let small = Gfd::new(q.clone(), vec![x], Rhs::False);
        let big = Gfd::new(q.clone(), vec![x, y], Rhs::False);
        assert!(gfd_reduces(&small, &big));
        assert!(!gfd_reduces(&big, &small));
    }
}
