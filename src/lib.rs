//! # gfd — Discovering Graph Functional Dependencies
//!
//! A from-scratch Rust implementation of *Discovering Graph Functional
//! Dependencies* (Wenfei Fan, Chunming Hu, Xueli Liu, Ping Lu — SIGMOD
//! 2018): graph functional dependencies (GFDs) over property graphs, the
//! fixed-parameter-tractable reasoning procedures (satisfiability,
//! implication, validation), pivoted support with anti-monotonicity, the
//! sequential discovery algorithm `SeqDisGFD`, and the parallel-scalable
//! `DisGFD` over vertex-cut fragmented graphs — plus the paper's baselines
//! (AMIE-style horn rules, path-pattern GCFDs, the split pipeline), data
//! generators, and a benchmark harness regenerating every figure and table
//! of the evaluation.
//!
//! ## Quick start
//!
//! ```
//! use gfd::prelude::*;
//!
//! // Build a property graph (§2.1).
//! let mut b = GraphBuilder::new();
//! let john = b.add_node("person");
//! let film = b.add_node("product");
//! b.set_attr(john, "type", "high_jumper");
//! b.set_attr(film, "type", "film");
//! b.add_edge(john, film, "create");
//! let g = b.build();
//!
//! // φ1 of the paper: film creators must be producers.
//! let q1 = Pattern::edge(
//!     PLabel::Is(g.interner().label("person")),
//!     PLabel::Is(g.interner().label("create")),
//!     PLabel::Is(g.interner().label("product")),
//! );
//! let ty = g.interner().attr("type");
//! let film_v = Value::Str(g.interner().symbol("film"));
//! let producer = Value::Str(g.interner().symbol("producer"));
//! let phi1 = Gfd::new(
//!     q1,
//!     vec![Literal::constant(1, ty, film_v)],
//!     Rhs::Lit(Literal::constant(0, ty, producer)),
//! );
//!
//! // Validation (§3) catches the inconsistency of Fig. 1.
//! assert!(!satisfies(&g, &phi1));
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | property graphs `G = (V, E, L, F_A)` |
//! | [`pattern`] | patterns `Q[x̄]`, isomorphism matching, canonical codes |
//! | [`logic`] | GFDs, closure, satisfiability / implication / validation |
//! | [`core`] | discovery: support, generation tree, `SeqDis`, `SeqCover` |
//! | [`parallel`] | vertex cut, superstep runtime, `ParDis`, `ParCover` |
//! | [`baselines`] | AMIE, GCFD, split-pipeline comparisons |
//! | [`datagen`] | synthetic graphs, KB emulators, noise, Σ generators |
//! | [`extended`] | GFDs with comparison predicates and arithmetic (§8) |
//! | [`incremental`] | violation maintenance under graph updates |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gfd_baselines as baselines;
pub use gfd_core as core;
pub use gfd_datagen as datagen;
pub use gfd_extended as extended;
pub use gfd_graph as graph;
pub use gfd_incremental as incremental;
pub use gfd_logic as logic;
pub use gfd_parallel as parallel;
pub use gfd_pattern as pattern;

use std::sync::Arc;

/// The most common imports in one place.
pub mod prelude {
    pub use gfd_core::{
        seq_cover, seq_cover_discovered, seq_dis, DiscoveredGfd, DiscoveryConfig, DiscoveryResult,
    };
    pub use gfd_datagen::{
        generate_gfds, inject_noise, knowledge_base, synthetic, GfdGenConfig, KbConfig, KbProfile,
        NoiseConfig, SyntheticConfig,
    };
    pub use gfd_extended::{
        discover_extended, ximplies, CmpOp, Term, XDiscoveryConfig, XGfd, XLiteral, XRhs,
    };
    pub use gfd_graph::{AttrId, Graph, GraphBuilder, Interner, LabelId, NodeId, Value};
    pub use gfd_incremental::{Update, UpdateBatch, ViolationDelta, ViolationMonitor};
    pub use gfd_logic::{
        find_violations, implies, is_satisfiable, satisfies, satisfies_all, violating_nodes, Gfd,
        Literal, Rhs,
    };
    pub use gfd_parallel::{par_cover, par_dis, ClusterConfig, ExecMode};
    pub use gfd_pattern::{find_all, pattern_support, End, Extension, PLabel, Pattern};
}

use prelude::*;

/// End-to-end sequential discovery (`SeqDisGFD`, §5): mines all `k`-bounded
/// minimum `σ`-frequent GFDs of `g` and returns a cover.
pub fn discover(g: &Graph, k: usize, sigma: usize) -> Vec<DiscoveredGfd> {
    discover_with(g, &DiscoveryConfig::new(k, sigma))
}

/// [`discover`] with full configuration control.
pub fn discover_with(g: &Graph, cfg: &DiscoveryConfig) -> Vec<DiscoveredGfd> {
    let result = seq_dis(g, cfg);
    seq_cover_discovered(&result.gfds)
}

/// End-to-end parallel discovery (`DisGFD`, §6) with `workers` workers;
/// produces the same cover as [`discover`], parallel-scalably.
pub fn discover_parallel(
    g: &Arc<Graph>,
    cfg: &DiscoveryConfig,
    workers: usize,
) -> Vec<DiscoveredGfd> {
    let ccfg = ClusterConfig::new(workers, ExecMode::Threads);
    let report = par_dis(g, cfg, &ccfg).expect("fault-free parallel discovery");
    let rules: Vec<Gfd> = report.result.gfds.iter().map(|d| d.gfd.clone()).collect();
    let cover =
        par_cover(&rules, workers, ExecMode::Threads, true).expect("fault-free parallel cover");
    cover
        .cover
        .into_iter()
        .map(|i| report.result.gfds[i].clone())
        .collect()
}
