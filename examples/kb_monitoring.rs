//! Continuous consistency monitoring of an evolving knowledge base
//! (`gfd::incremental`).
//!
//! Validation is the expensive leg of enforcement — co-W[1]-hard in
//! general (Theorem 1(b)) — but §4.1's pivot locality makes *maintenance*
//! cheap: an update only disturbs matches whose pivot lies within the
//! pattern radius of a touched node. This example mines a rule cover from
//! a YAGO2-style knowledge base, attaches a [`ViolationMonitor`], and
//! replays a curation session: corruption arrives in batches, each batch
//! reports exactly the violations it introduced or repaired, and the
//! monitor's affected-pivot counter shows how little of the graph each
//! batch forces it to re-examine.
//!
//! Run with: `cargo run --release --example kb_monitoring`

use gfd::incremental::{MonitorRule, UpdateBatch, ViolationMonitor};
use gfd::prelude::*;

fn main() {
    // ── Mine a rule cover from the clean KB ──────────────────────────
    let g = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(400));
    println!(
        "knowledge base: |V| = {}, |E| = {}",
        g.node_count(),
        g.edge_count()
    );
    let mut cfg = DiscoveryConfig::new(3, 30);
    cfg.max_lhs_size = 1;
    cfg.mine_negative = false;
    let mined = gfd::discover_with(&g, &cfg);
    // Keep the strongest handful — a curation deployment monitors a
    // reviewed cover, not the raw mining output.
    let rules: Vec<MonitorRule> = mined
        .iter()
        .take(6)
        .map(|d| MonitorRule::from(d.gfd.clone()))
        .collect();
    println!("monitoring {} rules:", rules.len());
    for d in mined.iter().take(6) {
        println!("  {}", d.display(g.interner()));
    }

    let mut monitor = ViolationMonitor::new(&g, rules);
    println!(
        "\ninitial violations: {} (mined rules hold on the clean graph)",
        monitor.total_violations()
    );

    // ── A curation session: corruption and repair in batches ─────────
    let i = g.interner();
    let ty = i.lookup_attr("type").unwrap();
    let create = i.lookup_label("create").unwrap();
    let person = i.lookup_label("person").unwrap();

    // Batch 1: Example 1(a) — a film creator becomes a high jumper.
    let creator = g
        .nodes()
        .find(|&v| {
            g.node_label(v) == person
                && g.out_edges(v).iter().any(|&e| g.edge(e).label == create)
                && g.attr(v, ty).is_some()
        })
        .expect("some creator exists");
    let original = g.attr(creator, ty).unwrap();
    let mut batch1 = UpdateBatch::new();
    batch1.set_attr(creator, ty, Value::Str(i.symbol("high_jumper")));

    // Batch 2: an unrelated low-degree person gets a new attribute
    // (benign: no monitored rule's premise or consequence changes).
    let bystander = g
        .nodes()
        .filter(|&v| g.node_label(v) == person && v != creator)
        .min_by_key(|&v| g.degree(v))
        .unwrap_or(creator);
    let mut batch2 = UpdateBatch::new();
    batch2.set_attr(bystander, ty, Value::Str(i.symbol("curator")));

    // Batch 3: the repair.
    let mut batch3 = UpdateBatch::new();
    batch3.set_attr(creator, ty, original);

    for (name, batch) in [
        ("corrupt a creator", batch1),
        ("benign edit far away", batch2),
        ("repair the creator", batch3),
    ] {
        let delta = monitor.apply(&batch);
        println!(
            "\nbatch [{name}]: +{} violations, -{} repaired, {} pivots re-checked (of {} nodes)",
            delta.added(),
            delta.removed(),
            delta.affected_pivots,
            monitor.graph().node_count()
        );
        for (r, rd) in delta.per_rule.iter().enumerate() {
            for m in &rd.added {
                println!("  rule {r} violated at match {m:?}");
            }
            for m in &rd.removed {
                println!("  rule {r} repaired at match {m:?}");
            }
        }
        // Locality: the monitor re-examines a neighbourhood of the
        // touched nodes, not the whole graph.
        assert!(delta.affected_pivots < monitor.graph().node_count() / 2);
    }

    assert!(monitor.is_clean(), "repairs restored consistency");
    println!(
        "\nfinal state: clean ({} violations)",
        monitor.total_violations()
    );
}
