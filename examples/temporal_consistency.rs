//! Temporal consistency with extended GFDs (§8's comparison predicates
//! and arithmetic, implemented in `gfd::extended`).
//!
//! Base GFDs compare values for equality only; temporal integrity needs
//! order and arithmetic: nobody dies before being born, parents predate
//! their children by a biological minimum, awards postdate releases. This
//! example builds a small genealogy-and-films knowledge base with such
//! regularities (plus planted errors), then
//!
//! 1. states the rules as extended GFDs and catches every planted error,
//! 2. lets `discover_extended` rediscover the rules from the clean part,
//! 3. shows the extended implication engine pruning redundant rules, and
//! 4. uses a confidence threshold to mine through the dirt.
//!
//! Run with: `cargo run --release --example temporal_consistency`

use gfd::extended::{
    discover_extended, find_violations, satisfies, xcover, CmpOp, Term, XDiscoveryConfig, XGfd,
    XLiteral, XRhs,
};
use gfd::prelude::*;

fn main() {
    // ── A genealogy with film credits ────────────────────────────────
    let mut b = GraphBuilder::new();
    let mut people = Vec::new();
    // Four generations, 25-year gaps; each person lives 80 years.
    for gen in 0..4i64 {
        for fam in 0..10i64 {
            let p = b.add_node("person");
            let birth = 1880 + gen * 25 + fam;
            b.set_attr(p, "birth", birth);
            b.set_attr(p, "death", birth + 80);
            people.push(p);
        }
    }
    for gen in 0..3usize {
        for fam in 0..10 {
            b.add_edge(
                people[gen * 10 + fam],
                people[(gen + 1) * 10 + fam],
                "parent",
            );
        }
    }
    // Films released during their director's lifetime, awarded 2y later.
    for i in 0..15i64 {
        let f = b.add_node("film");
        let year = 1920 + i * 3;
        b.set_attr(f, "year", year);
        let director = people[(10 + i as usize) % people.len()];
        b.add_edge(director, f, "directed");
        let a = b.add_node("award");
        b.set_attr(a, "year", year + 2);
        b.add_edge(f, a, "won");
    }
    // ── Planted inconsistencies ──────────────────────────────────────
    let zombie = b.add_node("person");
    b.set_attr(zombie, "birth", 1990i64);
    b.set_attr(zombie, "death", 1985i64); // dies before birth
    let clone = b.add_node("person");
    b.set_attr(clone, "birth", 1955i64);
    b.set_attr(clone, "death", 2030i64);
    b.add_edge(people[30], clone, "parent"); // parent only 5 years older
    let g = b.build();

    let i = g.interner();
    let person = PLabel::Is(i.lookup_label("person").unwrap());
    let parent = PLabel::Is(i.lookup_label("parent").unwrap());
    let film = PLabel::Is(i.lookup_label("film").unwrap());
    let award = PLabel::Is(i.lookup_label("award").unwrap());
    let won = PLabel::Is(i.lookup_label("won").unwrap());
    let birth = i.lookup_attr("birth").unwrap();
    let death = i.lookup_attr("death").unwrap();
    let year = i.lookup_attr("year").unwrap();

    // ── 1. Stated rules catch the planted errors ─────────────────────
    // χ1: birth ≤ death, on every person (single-node pattern).
    let chi1 = XGfd::new(
        Pattern::single(person),
        vec![],
        XRhs::Lit(XLiteral::cmp_terms(
            Term::new(0, birth),
            CmpOp::Le,
            Term::new(0, death),
            0,
        )),
    );
    // χ2: a parent is at least 12 years older than the child.
    let chi2 = XGfd::new(
        Pattern::edge(person, parent, person),
        vec![],
        XRhs::Lit(XLiteral::cmp_terms(
            Term::new(1, birth),
            CmpOp::Ge,
            Term::new(0, birth),
            12,
        )),
    );
    // χ3: awards postdate the film's release.
    let chi3 = XGfd::new(
        Pattern::edge(film, won, award),
        vec![],
        XRhs::Lit(XLiteral::cmp_terms(
            Term::new(1, year),
            CmpOp::Ge,
            Term::new(0, year),
            0,
        )),
    );
    println!("== stated temporal rules ==");
    for (name, chi) in [("chi1", &chi1), ("chi2", &chi2), ("chi3", &chi3)] {
        let v = find_violations(&g, chi, 0);
        println!(
            "{name}: {}  [{} violations]  {}",
            if satisfies(&g, chi) {
                "holds"
            } else {
                "VIOLATED"
            },
            v.len(),
            chi.display(i),
        );
    }
    assert!(!satisfies(&g, &chi1)); // the zombie
    assert!(!satisfies(&g, &chi2)); // the 5-year parent
    assert!(satisfies(&g, &chi3));

    // ── 2. Rediscovery from data ─────────────────────────────────────
    let mut cfg = XDiscoveryConfig::new(2, 8);
    cfg.max_lhs_size = 1;
    let mined = discover_extended(&g, &cfg);
    println!("\n== discovered extended rules (exact) ==");
    for r in mined.iter().take(8) {
        println!(
            "supp={:>3} conf={:.2}  {}",
            r.support,
            r.confidence,
            r.gfd.display(i)
        );
    }
    // The award-ordering rule is exact in the data and must be found.
    let award_rule = mined.iter().find(|r| {
        matches!(r.gfd.rhs(), XRhs::Lit(l)
            if l.op.is_order() && l.lhs.attr == year)
    });
    assert!(award_rule.is_some(), "award ordering must be rediscovered");

    // ── 3. Covers drop implied rules ─────────────────────────────────
    let rules: Vec<XGfd> = mined.iter().map(|r| r.gfd.clone()).collect();
    let cover = xcover(&rules);
    println!(
        "\ncover: {} of {} mined rules survive implication",
        cover.len(),
        rules.len()
    );
    assert!(cover.len() <= rules.len());

    // ── 4. Confidence mines through dirt ─────────────────────────────
    // The zombie breaks birth ≤ death exactly; at θ = 0.95 it returns.
    let mut approx_cfg = XDiscoveryConfig::new(2, 8);
    approx_cfg.max_lhs_size = 1;
    approx_cfg.min_confidence = 0.95;
    let approx = discover_extended(&g, &approx_cfg);
    let life_rule = approx.iter().find(|r| {
        matches!(r.gfd.rhs(), XRhs::Lit(l)
            if l.op == CmpOp::Le && l.lhs.attr == birth)
    });
    println!("\n== approximate mining (θ = 0.95) ==");
    match life_rule {
        Some(r) => println!(
            "recovered despite the zombie: supp={} conf={:.3}  {}",
            r.support,
            r.confidence,
            r.gfd.display(i)
        ),
        None => println!("(life-span rule not recovered at this σ)"),
    }
}
