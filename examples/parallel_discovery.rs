//! Parallel-scalable discovery (§6): `DisGFD = ParDis + ParCover`.
//!
//! Fragments a generated graph by vertex cut, runs discovery with an
//! increasing number of workers in the simulated-cluster mode, and prints
//! the Fig. 5(a)-style series: modelled n-machine time falls as workers
//! are added, and the parallel output is identical to the sequential one.
//!
//! Run with: `cargo run --release --example parallel_discovery`

use std::sync::Arc;

use gfd::prelude::*;

fn main() {
    let g = Arc::new(knowledge_base(
        &KbConfig::new(KbProfile::Dbpedia).with_scale(800),
    ));
    println!("graph: {} nodes, {} edges", g.node_count(), g.edge_count());

    let mut cfg = DiscoveryConfig::new(3, 40);
    cfg.max_lhs_size = 1;

    // Sequential yardstick (§6.1: parallel scalability is relative to it).
    let t0 = std::time::Instant::now();
    let seq = seq_dis(&g, &cfg);
    let seq_time = t0.elapsed();
    println!("SeqDis: {} rules in {:?}\n", seq.gfds.len(), seq_time);

    let canonical = |r: &DiscoveryResult| {
        let mut v: Vec<String> = r
            .gfds
            .iter()
            .map(|d| format!("{} {}", d.gfd.display(g.interner()), d.support))
            .collect();
        v.sort();
        v
    };
    let seq_rules = canonical(&seq);

    println!(
        "{:>3} {:>14} {:>14} {:>10} {:>8}",
        "n", "simulated", "speedup", "comm(KB)", "equal?"
    );
    let mut base = None;
    for n in [1, 2, 4, 8, 12, 16, 20] {
        let ccfg = ClusterConfig::new(n, ExecMode::Simulated);
        let report = par_dis(&g, &cfg, &ccfg).expect("fault-free");
        let sim = report.simulated;
        let baseline = *base.get_or_insert(sim);
        let equal = canonical(&report.result) == seq_rules;
        println!(
            "{:>3} {:>14?} {:>13.2}x {:>10} {:>8}",
            n,
            sim,
            baseline.as_secs_f64() / sim.as_secs_f64().max(1e-9),
            report.comm_bytes / 1024,
            if equal { "yes" } else { "NO" },
        );
    }

    // ParCover on the mined set (§6.3).
    println!("\nParCover over {} mined rules:", seq.gfds.len());
    let rules: Vec<Gfd> = seq.gfds.iter().map(|d| d.gfd.clone()).collect();
    for n in [1, 4, 8, 16] {
        let rep = par_cover(&rules, n, ExecMode::Simulated, true).expect("fault-free");
        println!(
            "  n={:>2}: cover {} / {} rules, {} groups, simulated {:?}",
            n,
            rep.cover.len(),
            rules.len(),
            rep.groups,
            rep.simulated
        );
    }
}
