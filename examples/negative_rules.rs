//! Negative GFD discovery (§4.2, §5.1, Fig. 8).
//!
//! Negative GFDs `Q[x̄](X → false)` declare structures or value
//! combinations that must not exist — the paper's GFD2 ("no movie receives
//! both the Gold Bear and the Gold Lion") and GFD3 ("Norway admits no dual
//! citizenship") are of this form, as is φ3's mutual-parent prohibition.
//! The YAGO2 emulator plants all three regularities; this example shows
//! `NVSpawn`/`NHSpawn` rediscovering them, and demonstrates the OWA
//! argument: the support of a negative rule is the support of its base.
//!
//! Run with: `cargo run --release --example negative_rules`

use gfd::prelude::*;

fn main() {
    let g = knowledge_base(
        &KbConfig::new(KbProfile::Yago2)
            .with_scale(800)
            .with_seed(23),
    );
    println!("KB: {} nodes, {} edges", g.node_count(), g.edge_count());

    let mut cfg = DiscoveryConfig::new(3, 25);
    cfg.max_lhs_size = 2;
    let result = seq_dis(&g, &cfg);

    let negatives: Vec<_> = result.gfds.iter().filter(|d| d.gfd.is_negative()).collect();
    println!(
        "\n{} rules total; {} negative:",
        result.gfds.len(),
        negatives.len()
    );

    let interner = g.interner();
    for d in &negatives {
        println!("  [supp={:>4}] {}", d.support, d.gfd.display(interner));
    }

    // Highlight the planted families.
    let parent = interner.lookup_label("parent");
    let mutual_parent = negatives.iter().find(|d| {
        let q = d.gfd.pattern();
        d.gfd.lhs().is_empty()
            && q.edge_count() == 2
            && parent.is_some_and(|p| q.edges().iter().all(|e| e.label == PLabel::Is(p)))
            && q.edges_between(0, 1).len() == 1
            && q.edges_between(1, 0).len() == 1
    });
    println!(
        "\nφ3-style mutual-parent prohibition rediscovered? {}",
        if mutual_parent.is_some() { "yes" } else { "no" }
    );

    // Structural negatives vs premise negatives (case (a) vs case (b), §4.2).
    let structural = negatives.iter().filter(|d| d.gfd.lhs().is_empty()).count();
    println!(
        "case (a) structural (∅→false): {structural}; case (b) with premises: {}",
        negatives.len() - structural
    );

    // Every negative rule indeed has zero matches satisfying X.
    for d in &negatives {
        assert!(satisfies(&g, &d.gfd), "planted negatives must hold");
    }
    println!("\nall negative rules hold on the KB (zero triggering matches).");

    // And they catch corruption: flip one parent edge into a cycle.
    if let Some(d) = mutual_parent {
        let mut b = GraphBuilder::new();
        let x = b.add_node("person");
        let y = b.add_node("person");
        b.add_edge(x, y, "parent");
        b.add_edge(y, x, "parent");
        let broken = b.build();
        // Rebuild the rule against the new graph's interner.
        let p = PLabel::Is(broken.interner().label("parent"));
        let person = PLabel::Is(broken.interner().label("person"));
        let q3 = Pattern::edge(person, p, person).extend(&Extension {
            src: End::Var(1),
            dst: End::Var(0),
            label: p,
        });
        let phi3 = Gfd::new(q3, vec![], Rhs::False);
        println!(
            "a mutual-parent pair violates the mined rule: {}",
            !satisfies(&broken, &phi3)
        );
        let _ = d;
    }
}
