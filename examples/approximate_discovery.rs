//! Approximate GFD discovery on dirty data (the confidence adaptation
//! the paper plans in §8, wired into `SeqDis` via
//! `DiscoveryConfig::min_confidence`).
//!
//! The discovery problem of §4.3 mines rules *satisfied* by `G` — which
//! presumes `G` is clean. Real knowledge bases are not: the paper's own
//! Exp-5 introduces noise to measure error detection. On a dirty graph,
//! exact mining silently loses every rule the noise touches. This example
//! reproduces that failure mode and the fix:
//!
//! 1. mine a baseline rule set from a clean YAGO2-style KB;
//! 2. corrupt the graph with the Exp-5 noise protocol;
//! 3. show exact mining losing rules on the dirty graph;
//! 4. re-mine with `min_confidence = 0.9` and measure how much of the
//!    clean baseline returns, each rule carrying its measured confidence.
//!
//! Run with: `cargo run --release --example approximate_discovery`

use std::collections::BTreeSet;

use gfd::prelude::*;

/// A canonical text key per rule, for set comparison across runs. Raw
/// mining output (no cover) keeps the comparison apples-to-apples: covers
/// depend on *which other* rules were mined, so they shift under noise
/// even for rules the noise never touched.
fn rule_keys(rules: &[DiscoveredGfd], g: &Graph) -> BTreeSet<String> {
    rules
        .iter()
        .filter(|d| d.gfd.is_positive())
        .map(|d| d.gfd.display(g.interner()))
        .collect()
}

fn main() {
    let clean = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(400));
    let mut cfg = DiscoveryConfig::new(3, 25);
    cfg.max_lhs_size = 1;
    cfg.mine_negative = false;

    // ── 1. Baseline on the clean graph ───────────────────────────────
    let baseline = seq_dis(&clean, &cfg);
    let baseline_keys = rule_keys(&baseline.gfds, &clean);
    println!(
        "clean KB (|V|={}, |E|={}): {} positive rules mined",
        clean.node_count(),
        clean.edge_count(),
        baseline_keys.len()
    );

    // ── 2. Exp-5 noise: α% of nodes, β% of their values ──────────────
    let noised = inject_noise(
        &clean,
        &NoiseConfig {
            alpha: 0.05,
            beta: 0.5,
            seed: 7,
            ..Default::default()
        },
    );
    let dirty = noised.graph;
    println!(
        "injected noise into {} nodes (α=5%, β=50%)",
        noised.dirty.len()
    );

    // ── 3. Exact mining on the dirty graph loses rules ───────────────
    let exact = seq_dis(&dirty, &cfg);
    let exact_keys = rule_keys(&exact.gfds, &dirty);
    let lost: BTreeSet<&String> = baseline_keys.difference(&exact_keys).collect();
    println!(
        "\nexact re-mining on the dirty graph: {} rules ({} of the clean baseline lost)",
        exact_keys.len(),
        lost.len()
    );
    for k in lost.iter().take(5) {
        println!("  lost: {k}");
    }

    // ── 4. Confidence-tolerant mining recovers them ──────────────────
    let mut approx_cfg = cfg.clone();
    approx_cfg.min_confidence = 0.9;
    let approx = seq_dis(&dirty, &approx_cfg);
    let approx_keys = rule_keys(&approx.gfds, &dirty);
    let recovered: Vec<&&String> = lost.iter().filter(|k| approx_keys.contains(**k)).collect();
    println!(
        "\napproximate re-mining (θ=0.9): {} rules; {}/{} of the noise-broken rules recovered",
        approx_keys.len(),
        recovered.len(),
        lost.len()
    );
    for d in approx.gfds.iter().filter(|d| d.confidence < 1.0).take(5) {
        println!("  {}", d.display(dirty.interner()));
    }

    assert!(
        !recovered.is_empty(),
        "confidence mining must recover rules exact mining lost"
    );
}
