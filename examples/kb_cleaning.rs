//! Knowledge-base consistency checking (the paper's motivating use case,
//! §1, and the Exp-5 protocol, §7).
//!
//! 1. Generate a clean YAGO2-style knowledge base and mine a rule cover.
//! 2. Inject noise per Exp-5: α% of nodes get β% of their values/edge
//!    labels corrupted; the dirty nodes are the ground truth `V^E`.
//! 3. Validate the rules on the dirty graph and score
//!    `|V^GFD ∩ V^E| / |V^E|` — the paper's error-detection accuracy.
//!
//! Run with: `cargo run --release --example kb_cleaning`

use gfd::prelude::*;

fn main() {
    // -- 1. mine rules from (mostly) clean data ------------------------
    let clean = knowledge_base(
        &KbConfig::new(KbProfile::Yago2)
            .with_scale(600)
            .with_seed(11),
    );
    println!(
        "clean KB: {} nodes, {} edges",
        clean.node_count(),
        clean.edge_count()
    );

    let mut cfg = DiscoveryConfig::new(3, 30);
    cfg.max_lhs_size = 1;
    let result = seq_dis(&clean, &cfg);
    let cover = seq_cover_discovered(&result.gfds);
    println!(
        "mined {} rules, cover {} ({} positive / {} negative)",
        result.gfds.len(),
        cover.len(),
        cover.iter().filter(|d| d.gfd.is_positive()).count(),
        cover.iter().filter(|d| d.gfd.is_negative()).count(),
    );

    // -- 2. dirty the graph --------------------------------------------
    let noise = NoiseConfig {
        alpha: 0.08,
        beta: 0.6,
        edge_share: 0.2,
        seed: 5,
    };
    let dirty = inject_noise(&clean, &noise);
    println!(
        "\ninjected noise: α={:.0}% β={:.0}% → {} dirty nodes (ground truth V^E)",
        noise.alpha * 100.0,
        noise.beta * 100.0,
        dirty.dirty.len()
    );

    // -- 3. detect: nodes in violations of any mined rule ---------------
    let rules: Vec<Gfd> = cover.iter().map(|d| d.gfd.clone()).collect();
    let detected = violating_nodes(&dirty.graph, &rules);
    let accuracy = gfd::datagen::detection_accuracy(&detected, &dirty.dirty);
    println!(
        "violations touch {} nodes; detection accuracy = {:.1}%",
        detected.len(),
        accuracy * 100.0
    );

    // Show a few caught inconsistencies with their rules.
    println!("\nexamples of caught inconsistencies:");
    let mut shown = 0;
    for d in &cover {
        if shown >= 5 {
            break;
        }
        let viols = find_violations(&dirty.graph, &d.gfd, Some(1));
        if !viols.is_empty() {
            let m = viols.get(0);
            let hit = m.iter().any(|n| dirty.dirty.contains(n));
            println!(
                "  {} {}",
                if hit { "✓" } else { "•" },
                d.gfd.display(dirty.graph.interner())
            );
            shown += 1;
        }
    }
    println!("\n(✓ = violation overlaps a ground-truth dirty node)");
}
