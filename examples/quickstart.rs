//! Quickstart: the paper's running examples end to end.
//!
//! Builds the three graphs of Fig. 1 (YAGO3 / DBpedia anecdotes), states
//! φ1, φ2, φ3, checks validation and satisfiability, and then lets the
//! discovery algorithm find rules of its own on a small knowledge base.
//!
//! Run with: `cargo run --release --example quickstart`

use gfd::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // G1: John Winter (a high jumper) credited with creating a film.
    // ------------------------------------------------------------------
    let mut b = GraphBuilder::new();
    let john = b.add_node("person");
    let film = b.add_node("product");
    b.set_attr(john, "name", "John Winter");
    b.set_attr(john, "type", "high_jumper");
    b.set_attr(film, "name", "Selling Out");
    b.set_attr(film, "type", "film");
    b.add_edge(john, film, "create");
    let g1 = b.build();

    let i1 = g1.interner();
    let q1 = Pattern::edge(
        PLabel::Is(i1.label("person")),
        PLabel::Is(i1.label("create")),
        PLabel::Is(i1.label("product")),
    );
    let ty = i1.attr("type");
    let phi1 = Gfd::new(
        q1,
        vec![Literal::constant(1, ty, Value::Str(i1.symbol("film")))],
        Rhs::Lit(Literal::constant(0, ty, Value::Str(i1.symbol("producer")))),
    );
    println!("φ1 = {}", phi1.display(i1));
    println!("  G1 ⊨ φ1?  {}", satisfies(&g1, &phi1));
    for v in find_violations(&g1, &phi1, None).iter() {
        println!(
            "  violation: match {:?} — John is a high jumper, not a producer",
            v
        );
    }

    // ------------------------------------------------------------------
    // G2: Saint Petersburg located in both Russia and Florida.
    // ------------------------------------------------------------------
    let mut b = GraphBuilder::new();
    let sp = b.add_node("city");
    let ru = b.add_node("country");
    let fl = b.add_node("city");
    b.set_attr(sp, "name", "Saint Petersburg");
    b.set_attr(ru, "name", "Russia");
    b.set_attr(fl, "name", "Florida");
    b.add_edge(sp, ru, "located");
    b.add_edge(sp, fl, "located");
    let g2 = b.build();

    let i2 = g2.interner();
    let name = i2.attr("name");
    let q2 = Pattern::new(
        vec![
            PLabel::Is(i2.label("city")),
            PLabel::Wildcard,
            PLabel::Wildcard,
        ],
        vec![
            gfd::pattern::PEdge {
                src: 0,
                dst: 1,
                label: PLabel::Is(i2.label("located")),
            },
            gfd::pattern::PEdge {
                src: 0,
                dst: 2,
                label: PLabel::Is(i2.label("located")),
            },
        ],
        0,
    );
    let phi2 = Gfd::new(q2, vec![], Rhs::Lit(Literal::var_var(1, name, 2, name)));
    println!("\nφ2 = {}", phi2.display(i2));
    println!(
        "  G2 ⊨ φ2?  {}  (a city lies in one place)",
        satisfies(&g2, &phi2)
    );

    // ------------------------------------------------------------------
    // G3: two persons each parent of the other — an illegal structure.
    // ------------------------------------------------------------------
    let mut b = GraphBuilder::new();
    let owen = b.add_node("person");
    let jb = b.add_node("person");
    b.set_attr(owen, "name", "Owen Brown");
    b.set_attr(jb, "name", "John Brown");
    b.add_edge(owen, jb, "parent");
    b.add_edge(jb, owen, "parent");
    let g3 = b.build();

    let i3 = g3.interner();
    let person = PLabel::Is(i3.label("person"));
    let parent = PLabel::Is(i3.label("parent"));
    let q3 = Pattern::edge(person, parent, person).extend(&Extension {
        src: End::Var(1),
        dst: End::Var(0),
        label: parent,
    });
    let phi3 = Gfd::new(q3, vec![], Rhs::False);
    println!("\nφ3 = {}", phi3.display(i3));
    println!("  negative GFD? {}", phi3.is_negative());
    println!("  G3 ⊨ φ3?  {}", satisfies(&g3, &phi3));

    // Reasoning (§3): the set {φ3} alone is unsatisfiable (its only
    // pattern may never match), but adding an applicable rule fixes that.
    println!(
        "\nsatisfiable({{φ3}})       = {}",
        is_satisfiable(std::slice::from_ref(&phi3))
    );
    let benign = Gfd::new(
        Pattern::edge(person, PLabel::Is(i3.label("knows")), person),
        vec![],
        Rhs::Lit(Literal::constant(0, i3.attr("kind"), Value::Int(1))),
    );
    println!(
        "satisfiable({{φ3, benign}}) = {}",
        is_satisfiable(&[phi3, benign])
    );

    // ------------------------------------------------------------------
    // Discovery (§5): mine rules from a generated knowledge base.
    // ------------------------------------------------------------------
    println!("\n-- discovery on a generated YAGO2-style KB --");
    let kb = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(400));
    let mut cfg = DiscoveryConfig::new(3, 40);
    cfg.max_lhs_size = 1;
    let cover = gfd::discover_with(&kb, &cfg);
    println!(
        "discovered {} rules in the cover ({} positive, {} negative):",
        cover.len(),
        cover.iter().filter(|d| d.gfd.is_positive()).count(),
        cover.iter().filter(|d| d.gfd.is_negative()).count(),
    );
    for d in cover.iter().take(12) {
        println!("  [supp={:>4}] {}", d.support, d.gfd.display(kb.interner()));
    }
    if cover.len() > 12 {
        println!("  … and {} more", cover.len() - 12);
    }
}
