//! Smoke tests mirroring `examples/quickstart.rs`, so the example's flow
//! (build the Fig. 1 graphs → validate φ1/φ3 → discover a cover on a
//! generated KB) cannot silently rot: examples are only compiled, never
//! run, by `cargo test`.

use gfd::prelude::*;

/// G1 of Fig. 1 plus φ1, exactly as the example builds them.
fn g1_and_phi1() -> (Graph, Gfd) {
    let mut b = GraphBuilder::new();
    let john = b.add_node("person");
    let film = b.add_node("product");
    b.set_attr(john, "name", "John Winter");
    b.set_attr(john, "type", "high_jumper");
    b.set_attr(film, "name", "Selling Out");
    b.set_attr(film, "type", "film");
    b.add_edge(john, film, "create");
    let g1 = b.build();

    let i1 = g1.interner();
    let q1 = Pattern::edge(
        PLabel::Is(i1.label("person")),
        PLabel::Is(i1.label("create")),
        PLabel::Is(i1.label("product")),
    );
    let ty = i1.attr("type");
    let phi1 = Gfd::new(
        q1,
        vec![Literal::constant(1, ty, Value::Str(i1.symbol("film")))],
        Rhs::Lit(Literal::constant(0, ty, Value::Str(i1.symbol("producer")))),
    );
    (g1, phi1)
}

#[test]
fn quickstart_validation_catches_fig1_inconsistencies() {
    // φ1: the film's creator is a high jumper, not a producer.
    let (g1, phi1) = g1_and_phi1();
    assert!(!satisfies(&g1, &phi1));
    assert_eq!(find_violations(&g1, &phi1, None).len(), 1);

    // φ3: mutual parenthood is prohibited outright (negative rule).
    let mut b = GraphBuilder::new();
    let owen = b.add_node("person");
    let jb = b.add_node("person");
    b.add_edge(owen, jb, "parent");
    b.add_edge(jb, owen, "parent");
    let g3 = b.build();

    let i3 = g3.interner();
    let person = PLabel::Is(i3.label("person"));
    let parent = PLabel::Is(i3.label("parent"));
    let q3 = Pattern::edge(person, parent, person).extend(&Extension {
        src: End::Var(1),
        dst: End::Var(0),
        label: parent,
    });
    let phi3 = Gfd::new(q3, vec![], Rhs::False);
    assert!(phi3.is_negative());
    assert!(!satisfies(&g3, &phi3));

    // Reasoning (§3): {φ3} alone is unsatisfiable; adding an applicable
    // benign rule restores satisfiability.
    assert!(!is_satisfiable(std::slice::from_ref(&phi3)));
    let benign = Gfd::new(
        Pattern::edge(person, PLabel::Is(i3.label("knows")), person),
        vec![],
        Rhs::Lit(Literal::constant(0, i3.attr("kind"), Value::Int(1))),
    );
    assert!(is_satisfiable(&[phi3, benign]));
}

#[test]
fn quickstart_discovery_yields_nonempty_valid_cover() {
    // The example's discovery section: mine a YAGO2-style KB and print the
    // cover. The smoke contract: discovery terminates, the cover is
    // non-empty, and every covered rule actually holds with its support.
    let kb = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(400));
    let mut cfg = DiscoveryConfig::new(3, 40);
    cfg.max_lhs_size = 1;
    let cover = gfd::discover_with(&kb, &cfg);
    assert!(!cover.is_empty());
    for d in &cover {
        assert!(satisfies(&kb, &d.gfd));
        assert!(d.support >= 40);
    }
}
