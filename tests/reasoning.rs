//! Deeper reasoning invariants spanning logic/pattern/core:
//!
//! * normal form (§2.2): a multi-literal consequence is equivalent to the
//!   set of its single-literal normal forms;
//! * soundness triangle: `Σ ⊨ φ` and `G ⊨ Σ` imply `G ⊨ φ` on arbitrary
//!   generated graphs;
//! * `φ₁ ≪ φ₂ ⟹ {φ₁} ⊨ φ₂` (reduction is an implication witness);
//! * cover idempotence and equivalence;
//! * embedding transitivity.

use gfd::logic::gfd_reduces;
use gfd::pattern::is_embedded;
use gfd::prelude::*;
use proptest::prelude::*;

fn interner_fixture() -> (Interner, Vec<PLabel>, Vec<AttrId>) {
    let i = Interner::new();
    let labels = (0..4)
        .map(|k| PLabel::Is(i.label(&format!("L{k}"))))
        .collect();
    let attrs = (0..3).map(|k| i.attr(&format!("a{k}"))).collect();
    (i, labels, attrs)
}

/// Normal form: `Q(X → {l1, l2})` behaves as `{Q(X → l1), Q(X → l2)}` on
/// validation over arbitrary graphs.
#[test]
fn multi_literal_rhs_decomposes() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(150));
    let i = g.interner();
    let person = PLabel::Is(i.lookup_label("person").unwrap());
    let create = PLabel::Is(i.lookup_label("create").unwrap());
    let product = PLabel::Is(i.lookup_label("product").unwrap());
    let q = Pattern::edge(person, create, product);
    let ty = i.lookup_attr("type").unwrap();
    let film = Value::Str(i.lookup_symbol("film").unwrap());
    let producer = Value::Str(i.lookup_symbol("producer").unwrap());
    let x = vec![Literal::constant(1, ty, film)];
    let l1 = Literal::constant(0, ty, producer);
    let l2 = Literal::var_var(0, ty, 1, ty);

    // The conjunction validates iff both normal forms validate.
    let phi_l1 = Gfd::new(q.clone(), x.clone(), Rhs::Lit(l1));
    let phi_l2 = Gfd::new(q.clone(), x.clone(), Rhs::Lit(l2));
    let both = satisfies(&g, &phi_l1) && satisfies(&g, &phi_l2);
    // Manual conjunction check over matches.
    let ms = find_all(&q, &g);
    let conj = ms.iter().all(|m| {
        let prem = x.iter().all(|lit| lit.satisfied(m, &g));
        !prem || (l1.satisfied(m, &g) && l2.satisfied(m, &g))
    });
    assert_eq!(both, conj);
}

/// Soundness: implication + model ⇒ satisfaction, on a planted KB.
#[test]
fn implication_soundness_on_models() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Imdb).with_scale(150));
    let mut cfg = DiscoveryConfig::new(3, 15);
    cfg.max_edges = 3;
    cfg.max_lhs_size = 1;
    let mined = seq_dis(&g, &cfg);
    let sigma = mined.rules();
    // Everything mined holds on g.
    assert!(satisfies_all(&g, &sigma));
    // Any φ implied by Σ must therefore hold on g too. Build some implied
    // variants: premise-weakenings and pattern-extensions of mined rules.
    let mut implied: Vec<Gfd> = Vec::new();
    for phi in sigma.iter().take(10) {
        if phi.pattern().node_count() < 3 {
            if let Some(first_edge) = phi.pattern().edges().first() {
                let ext = Extension {
                    src: End::Var(first_edge.src),
                    dst: End::New(PLabel::Wildcard),
                    label: PLabel::Wildcard,
                };
                let bigger = phi.pattern().extend(&ext);
                implied.push(Gfd::new(bigger, phi.lhs().to_vec(), phi.rhs()));
            }
        }
    }
    for phi in &implied {
        assert!(implies(&sigma, phi), "{}", phi.display(g.interner()));
        assert!(satisfies(&g, phi), "{}", phi.display(g.interner()));
    }
}

/// `φ₁ ≪ φ₂ ⟹ {φ₁} ⊨ φ₂`: the reduction order witnesses implication.
#[test]
fn reduction_implies_implication() {
    let (_i, labels, attrs) = interner_fixture();
    let q1 = Pattern::edge(labels[0], labels[1], labels[2]);
    let base = Gfd::new(
        q1.clone(),
        vec![Literal::constant(1, attrs[0], Value::Int(1))],
        Rhs::Lit(Literal::constant(0, attrs[1], Value::Int(2))),
    );
    // Premise extension.
    let spec1 = Gfd::new(
        q1.clone(),
        vec![
            Literal::constant(1, attrs[0], Value::Int(1)),
            Literal::constant(0, attrs[2], Value::Int(5)),
        ],
        base.rhs(),
    );
    // Pattern extension.
    let q2 = q1.extend(&Extension {
        src: End::Var(1),
        dst: End::New(labels[3]),
        label: labels[1],
    });
    let spec2 = Gfd::new(q2, base.lhs().to_vec(), base.rhs());
    for spec in [&spec1, &spec2] {
        assert!(gfd_reduces(&base, spec));
        assert!(implies(std::slice::from_ref(&base), spec));
    }
}

/// Covers are idempotent and preserve equivalence.
#[test]
fn cover_idempotent_and_equivalent() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(150));
    let sigma = generate_gfds(
        &g,
        &GfdGenConfig {
            count: 80,
            specialization_rate: 0.5,
            ..Default::default()
        },
    );
    let once = seq_cover(&sigma);
    let twice = seq_cover(&once);
    assert_eq!(once.len(), twice.len());
    assert!(gfd::logic::equivalent(&once, &sigma));
    assert!(gfd::logic::equivalent(&twice, &once));
}

/// Explanations agree with `find_violations` counts.
#[test]
fn explanations_match_violations() {
    let clean = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(150));
    let noised = inject_noise(
        &clean,
        &NoiseConfig {
            alpha: 0.15,
            beta: 0.9,
            edge_share: 0.0,
            seed: 2,
        },
    );
    let mut cfg = DiscoveryConfig::new(3, 15);
    cfg.max_edges = 3;
    cfg.max_lhs_size = 1;
    let rules = seq_dis(&clean, &cfg).rules();
    let mut explained = 0usize;
    let mut violating = 0usize;
    for phi in rules.iter().take(25) {
        let v = find_violations(&noised.graph, phi, None).len();
        let e = gfd::logic::explain_violations(&noised.graph, phi, usize::MAX).len();
        assert_eq!(v, e, "{}", phi.display(clean.interner()));
        violating += v;
        explained += e;
    }
    assert_eq!(explained, violating);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Embedding is transitive on an extension chain, and each prefix
    /// pattern keeps at least the support of its extension (Theorem 3's
    /// pattern half, checked via generated graphs).
    #[test]
    fn embedding_chain_transitivity(seed in 0u64..500) {
        let g = synthetic(&SyntheticConfig {
            nodes: 120,
            edges: 360,
            node_labels: 4,
            edge_labels: 3,
            seed,
            ..Default::default()
        });
        let triples = gfd::graph::triple_stats(&g);
        prop_assume!(!triples.is_empty());
        let t = &triples[0];
        let q1 = Pattern::edge(
            PLabel::Is(t.src_label),
            PLabel::Is(t.edge_label),
            PLabel::Is(t.dst_label),
        );
        let t2 = &triples[seed as usize % triples.len()];
        let q2 = q1.extend(&Extension {
            src: End::Var(1),
            dst: End::New(PLabel::Is(t2.dst_label)),
            label: PLabel::Is(t2.edge_label),
        });
        let q3 = q2.extend(&Extension {
            src: End::Var(0),
            dst: End::New(PLabel::Wildcard),
            label: PLabel::Wildcard,
        });
        prop_assert!(is_embedded(&q1, &q2));
        prop_assert!(is_embedded(&q2, &q3));
        prop_assert!(is_embedded(&q1, &q3));
        // Support anti-monotone along the chain.
        let s1 = pattern_support(&q1, &g);
        let s2 = pattern_support(&q2, &g);
        let s3 = pattern_support(&q3, &g);
        prop_assert!(s1 >= s2 && s2 >= s3, "{s1} {s2} {s3}");
    }

    /// Satisfiability of generated rule sets is stable under adding an
    /// implied rule.
    #[test]
    fn satisfiability_stable_under_implied_additions(seed in 0u64..200) {
        let g = synthetic(&SyntheticConfig {
            nodes: 80,
            edges: 200,
            node_labels: 3,
            edge_labels: 3,
            seed,
            ..Default::default()
        });
        let sigma = generate_gfds(&g, &GfdGenConfig {
            count: 10,
            k: 3,
            seed,
            negative_rate: 0.2,
            ..Default::default()
        });
        let sat = is_satisfiable(&sigma);
        // Add a premise-weakened copy of an existing rule — implied, so
        // satisfiability must not change.
        let mut extended = sigma.clone();
        let donor = &sigma[seed as usize % sigma.len()];
        if !donor.lhs().is_empty() {
            let weaker: Vec<Literal> = donor.lhs().to_vec();
            extended.push(Gfd::new(donor.pattern().clone(), weaker, donor.rhs()));
            prop_assert_eq!(is_satisfiable(&extended), sat);
        }
    }
}
