//! Cross-crate integration of the §8 extensions: extended predicates,
//! approximate (confidence) mining, and incremental violation
//! maintenance, exercised together through the umbrella crate.

use gfd::extended::{xcover, Operand};
use gfd::prelude::*;

/// A KB where base and extended regularities coexist: creators are
/// producers (base, CFD-style), and sequels are released strictly after
/// their originals (extended, order). A small dirty tail breaks both.
fn mixed_kb(dirty: usize) -> Graph {
    let mut b = GraphBuilder::new();
    for i in 0..30i64 {
        let p = b.add_node("person");
        let f = b.add_node("film");
        b.set_attr(
            p,
            "type",
            if (i as usize) < dirty {
                "critic"
            } else {
                "producer"
            },
        );
        b.set_attr(f, "type", "film");
        b.set_attr(f, "year", 1960 + i);
        b.add_edge(p, f, "create");
        let s = b.add_node("film");
        b.set_attr(s, "type", "film");
        // Sequels appear 3 years later; dirty ones predate the original.
        b.set_attr(
            s,
            "year",
            1960 + i + if (i as usize) < dirty { -2 } else { 3 },
        );
        b.add_edge(f, s, "sequel");
    }
    b.build()
}

#[test]
fn extended_discovery_and_validation_agree() {
    let g = mixed_kb(0);
    let mut cfg = XDiscoveryConfig::new(2, 10);
    cfg.max_lhs_size = 1;
    let rules = gfd::extended::discover_extended(&g, &cfg);
    assert!(!rules.is_empty());
    // Every exact rule the miner reports must validate on the graph it
    // was mined from — discovery and validation share one semantics.
    for r in rules.iter().filter(|r| r.confidence >= 1.0) {
        assert!(
            gfd::extended::satisfies(&g, &r.gfd),
            "mined rule fails validation: {}",
            r.gfd.display(g.interner())
        );
    }
    // The sequel-ordering regularity is found as an order or arithmetic
    // literal over `year`.
    let year = g.interner().lookup_attr("year").unwrap();
    assert!(
        rules.iter().any(|r| matches!(
            r.gfd.rhs(),
            XRhs::Lit(l) if l.lhs.attr == year
                && (l.op.is_order() || matches!(l.rhs, Operand::Term(_, d) if d != 0))
        )),
        "sequel ordering must be discovered"
    );
}

#[test]
fn extended_cover_stays_sound() {
    let g = mixed_kb(0);
    let mut cfg = XDiscoveryConfig::new(2, 10);
    cfg.max_lhs_size = 1;
    let mined = gfd::extended::discover_extended(&g, &cfg);
    let rules: Vec<XGfd> = mined.into_iter().map(|r| r.gfd).collect();
    let cover = xcover(&rules);
    assert!(!cover.is_empty());
    assert!(cover.len() < rules.len(), "threshold ladders must collapse");
    // The cover implies every dropped rule.
    for phi in &rules {
        assert!(ximplies(&cover, phi), "{}", phi.display(g.interner()));
    }
    // And the cover itself still validates.
    for phi in &cover {
        assert!(gfd::extended::satisfies(&g, phi));
    }
}

#[test]
fn base_and_extended_rules_in_one_monitor() {
    let g = mixed_kb(0);
    let i = g.interner();
    let person = PLabel::Is(i.lookup_label("person").unwrap());
    let film = PLabel::Is(i.lookup_label("film").unwrap());
    let create = PLabel::Is(i.lookup_label("create").unwrap());
    let sequel = PLabel::Is(i.lookup_label("sequel").unwrap());
    let ty = i.lookup_attr("type").unwrap();
    let year = i.lookup_attr("year").unwrap();
    let producer = Value::Str(i.lookup_symbol("producer").unwrap());

    let base = Gfd::new(
        Pattern::edge(person, create, film),
        vec![],
        Rhs::Lit(Literal::constant(0, ty, producer)),
    );
    let extended = XGfd::new(
        Pattern::edge(film, sequel, film),
        vec![],
        XRhs::Lit(XLiteral::cmp_terms(
            Term::new(1, year),
            CmpOp::Gt,
            Term::new(0, year),
            0,
        )),
    );
    let mut monitor = ViolationMonitor::new(&g, vec![base.clone().into(), extended.into()]);
    assert!(monitor.is_clean());

    // One batch violates both rule kinds at once.
    let mut batch = UpdateBatch::new();
    batch.set_attr(NodeId::from_index(0), ty, Value::Str(i.symbol("critic")));
    batch.set_attr(NodeId::from_index(2), year, Value::Int(1900));
    let delta = monitor.apply(&batch);
    assert_eq!(delta.added(), 2, "one base + one extended violation");
    assert_eq!(monitor.total_violations(), 2);

    // Violations found incrementally agree with from-scratch validation.
    let v_base = find_violations(monitor.graph(), &base, None);
    assert_eq!(v_base.len(), monitor.violations(0).count());
}

#[test]
fn approximate_mining_matches_parallel_path() {
    use std::sync::Arc;
    // min_confidence flows through the identical lattice in SeqDis and
    // ParDis, so both paths must emit the same approximate rule set.
    let g = Arc::new(mixed_kb(3));
    let mut cfg = DiscoveryConfig::new(2, 8);
    cfg.max_lhs_size = 1;
    cfg.mine_negative = false;
    cfg.min_confidence = 0.85;
    let seq = seq_dis(&g, &cfg);
    let par = par_dis(&g, &cfg, &ClusterConfig::new(3, ExecMode::Simulated)).expect("fault-free");
    let key = |d: &DiscoveredGfd| (d.gfd.display(g.interner()), d.support);
    let mut a: Vec<_> = seq.gfds.iter().map(key).collect();
    let mut b: Vec<_> = par.result.gfds.iter().map(key).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "sequential and parallel approximate mining agree");
    assert!(
        seq.gfds.iter().any(|d| d.confidence < 1.0),
        "the dirty tail forces at least one approximate rule"
    );
}

#[test]
fn lifted_base_rules_validate_identically() {
    // XGfd::from_base preserves semantics: for random-ish rules over the
    // mixed KB, base validation and lifted-extended validation agree.
    let g = mixed_kb(4);
    let mut cfg = DiscoveryConfig::new(2, 5);
    cfg.max_lhs_size = 1;
    let mined = seq_dis(&g, &cfg);
    let mut checked = 0;
    for d in mined.gfds.iter().take(50) {
        let lifted = XGfd::from_base(&d.gfd);
        assert_eq!(
            gfd::logic::satisfies(&g, &d.gfd),
            gfd::extended::satisfies(&g, &lifted),
            "{}",
            d.gfd.display(g.interner())
        );
        assert_eq!(lifted.to_base().as_ref(), Some(&d.gfd));
        checked += 1;
    }
    assert!(checked > 0);
}
