//! Integration tests reproducing the paper's worked examples end to end:
//! Fig. 1's graphs and GFDs (Examples 1–3), the reduction order of
//! Example 4, the spawning chain of Examples 5–8, and the support
//! anti-monotonicity of Theorem 3.

use gfd::logic::gfd_reduces;
use gfd::prelude::*;

/// Fig. 1, G1 + φ1: the wrong creator type is caught.
#[test]
fn example_1_phi1() {
    let mut b = GraphBuilder::new();
    let john = b.add_node("person");
    let film = b.add_node("product");
    b.set_attr(john, "type", "high_jumper");
    b.set_attr(film, "type", "film");
    b.add_edge(john, film, "create");
    let g1 = b.build();

    let i = g1.interner();
    let q1 = Pattern::edge(
        PLabel::Is(i.label("person")),
        PLabel::Is(i.label("create")),
        PLabel::Is(i.label("product")),
    );
    let ty = i.attr("type");
    let phi1 = Gfd::new(
        q1,
        vec![Literal::constant(1, ty, Value::Str(i.symbol("film")))],
        Rhs::Lit(Literal::constant(0, ty, Value::Str(i.symbol("producer")))),
    );
    assert!(phi1.is_positive());
    assert!(!phi1.is_trivial());
    assert!(!satisfies(&g1, &phi1));
    assert_eq!(find_violations(&g1, &phi1, None).len(), 1);
}

/// Fig. 1, G2 + φ2: wildcards match both country and city (Example 2's
/// point), and the name equality fails.
#[test]
fn example_1_phi2_wildcards() {
    let mut b = GraphBuilder::new();
    let sp = b.add_node("city");
    let ru = b.add_node("country");
    let fl = b.add_node("city");
    b.set_attr(ru, "name", "Russia");
    b.set_attr(fl, "name", "Florida");
    b.add_edge(sp, ru, "located");
    b.add_edge(sp, fl, "located");
    let g2 = b.build();

    let i = g2.interner();
    let name = i.attr("name");
    let q2 = Pattern::new(
        vec![
            PLabel::Is(i.label("city")),
            PLabel::Wildcard,
            PLabel::Wildcard,
        ],
        vec![
            gfd::pattern::PEdge {
                src: 0,
                dst: 1,
                label: PLabel::Is(i.label("located")),
            },
            gfd::pattern::PEdge {
                src: 0,
                dst: 2,
                label: PLabel::Is(i.label("located")),
            },
        ],
        0,
    );
    // The wildcard really is needed: y maps to a country, z to a city.
    assert_eq!(gfd::pattern::count_matches(&q2, &g2), 2);
    let phi2 = Gfd::new(q2, vec![], Rhs::Lit(Literal::var_var(1, name, 2, name)));
    assert!(!satisfies(&g2, &phi2));
}

/// Fig. 1, G3 + φ3: the cyclic "illegal structure".
#[test]
fn example_1_phi3_negative() {
    let mut b = GraphBuilder::new();
    let owen = b.add_node("person");
    let john = b.add_node("person");
    b.add_edge(owen, john, "parent");
    b.add_edge(john, owen, "parent");
    let g3 = b.build();

    let i = g3.interner();
    let person = PLabel::Is(i.label("person"));
    let parent = PLabel::Is(i.label("parent"));
    let q3 = Pattern::edge(person, parent, person).extend(&Extension {
        src: End::Var(1),
        dst: End::Var(0),
        label: parent,
    });
    let phi3 = Gfd::new(q3, vec![], Rhs::False);
    assert!(phi3.is_negative());
    assert!(!satisfies(&g3, &phi3));
    // On an acyclic family it holds.
    let mut b = GraphBuilder::new();
    let a = b.add_node("person");
    let c = b.add_node("person");
    b.add_edge(a, c, "parent");
    let ok = b.build();
    let person = PLabel::Is(ok.interner().label("person"));
    let parent = PLabel::Is(ok.interner().label("parent"));
    let q3b = Pattern::edge(person, parent, person).extend(&Extension {
        src: End::Var(1),
        dst: End::Var(0),
        label: parent,
    });
    assert!(satisfies(&ok, &Gfd::new(q3b, vec![], Rhs::False)));
}

/// Example 4: φ1 ≪ φ1¹ but φ1 ⋘̸ φ1².
#[test]
fn example_4_reduction_order() {
    let i = Interner::new();
    let person = PLabel::Is(i.label("person"));
    let create = PLabel::Is(i.label("create"));
    let product = PLabel::Is(i.label("product"));
    let award = PLabel::Is(i.label("award"));
    let receive = PLabel::Is(i.label("receive"));
    let ty = i.attr("type");
    let nm = i.attr("name");
    let film = Value::Str(i.symbol("film"));
    let producer = Value::Str(i.symbol("producer"));
    let selling_out = Value::Str(i.symbol("Selling out"));

    let q1 = Pattern::edge(person, create, product);
    let x1 = Literal::constant(1, ty, film);
    let l = Literal::constant(0, ty, producer);
    let phi1 = Gfd::new(q1.clone(), vec![x1], Rhs::Lit(l));

    let q11 = q1.extend(&Extension {
        src: End::Var(1),
        dst: End::New(award),
        label: receive,
    });
    let phi11 = Gfd::new(
        q11.clone(),
        vec![x1, Literal::constant(1, nm, selling_out)],
        Rhs::Lit(l),
    );
    assert!(gfd_reduces(&phi1, &phi11));
    assert!(!gfd_reduces(&phi11, &phi1));

    let phi12 = Gfd::new(
        q11,
        vec![Literal::constant(1, nm, selling_out)],
        Rhs::Lit(l),
    );
    assert!(!gfd_reduces(&phi1, &phi12));
}

/// Theorem 3: φ1 ≪ φ2 ⟹ supp(φ1, G) ≥ supp(φ2, G), checked on a concrete
/// graph for both the pattern-extension and premise-extension directions.
#[test]
fn theorem_3_anti_monotonicity() {
    let kb = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(300));
    let i = kb.interner();
    let person = PLabel::Is(i.lookup_label("person").unwrap());
    let create = PLabel::Is(i.lookup_label("create").unwrap());
    let product = PLabel::Is(i.lookup_label("product").unwrap());
    let receive = PLabel::Is(i.lookup_label("receive").unwrap());
    let award = PLabel::Is(i.lookup_label("award").unwrap());
    let ty = i.lookup_attr("type").unwrap();
    let film = Value::Str(i.lookup_symbol("film").unwrap());
    let producer = Value::Str(i.lookup_symbol("producer").unwrap());

    let q1 = Pattern::edge(person, create, product);
    let phi1 = Gfd::new(
        q1.clone(),
        vec![Literal::constant(1, ty, film)],
        Rhs::Lit(Literal::constant(0, ty, producer)),
    );
    // Vertical extension.
    let q2 = q1.extend(&Extension {
        src: End::Var(1),
        dst: End::New(award),
        label: receive,
    });
    let phi2 = Gfd::new(
        q2,
        vec![Literal::constant(1, ty, film)],
        Rhs::Lit(Literal::constant(0, ty, producer)),
    );
    assert!(gfd_reduces(&phi1, &phi2));

    let supp = |phi: &Gfd| {
        let ms = find_all(phi.pattern(), &kb);
        let attrs = vec![ty];
        let table = gfd::core::MatchTable::build(phi.pattern(), &ms, &kb, &attrs);
        gfd::core::evaluate(&table, phi.lhs(), &phi.rhs()).support
    };
    let (s1, s2) = (supp(&phi1), supp(&phi2));
    assert!(s1 >= s2, "supp(φ1)={s1} < supp(φ2)={s2}");
    assert!(s1 > 0);
}

/// §3 characterisations: implication and satisfiability round-trip on the
/// paper's φ-family, and validation agrees with them.
#[test]
fn reasoning_characterisations_consistent() {
    let i = Interner::new();
    let person = PLabel::Is(i.label("person"));
    let create = PLabel::Is(i.label("create"));
    let product = PLabel::Is(i.label("product"));
    let ty = i.attr("type");
    let film = Value::Str(i.symbol("film"));
    let producer = Value::Str(i.symbol("producer"));

    let q = Pattern::edge(person, create, product);
    let phi = Gfd::new(
        q.clone(),
        vec![Literal::constant(1, ty, film)],
        Rhs::Lit(Literal::constant(0, ty, producer)),
    );
    // Σ ⊨ φ for Σ = {φ}; and a weaker-premise variant implies it.
    assert!(implies(std::slice::from_ref(&phi), &phi));
    let stronger = Gfd::new(q, vec![], Rhs::Lit(Literal::constant(0, ty, producer)));
    assert!(implies(std::slice::from_ref(&stronger), &phi));
    assert!(!implies(std::slice::from_ref(&phi), &stronger));
    assert!(is_satisfiable(&[phi, stronger]));
}
