//! Property-based invariants across crates (proptest).
//!
//! * the matcher agrees with a brute-force enumerator on random graphs;
//! * canonical codes are invariant under variable permutation;
//! * pivoted support is anti-monotone under pattern extension (Theorem 3);
//! * vertex-cut fragments partition the edge set and fragment-local match
//!   unions equal global matching;
//! * the closure is idempotent and monotone;
//! * implication is reflexive and the cover always stays equivalent.

use std::ops::ControlFlow;

use gfd::prelude::*;
use proptest::prelude::*;

/// A small random multigraph: (#nodes, edges as (src, dst, label)).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (2usize..8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 0u8..3), 0..14),
        )
    })
}

fn build(n: usize, edges: &[(usize, usize, u8)]) -> Graph {
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(&format!("t{}", i % 3))).collect();
    for &(s, d, l) in edges {
        b.add_edge(nodes[s], nodes[d], &format!("r{l}"));
    }
    b.build()
}

/// Brute force: try every injective assignment of pattern vars to nodes.
fn brute_force_matches(q: &Pattern, g: &Graph) -> usize {
    let n = g.node_count();
    let k = q.node_count();
    let mut count = 0usize;
    let mut idx = vec![0usize; k];
    'outer: loop {
        // Check injectivity.
        let distinct = (0..k).all(|a| (0..a).all(|b| idx[a] != idx[b]));
        if distinct {
            let ok_nodes =
                (0..k).all(|v| q.node_label(v).admits(g.node_label(NodeId(idx[v] as u32))));
            let ok_edges = ok_nodes
                && (0..k).all(|a| {
                    (0..k).all(|b| {
                        let pes = q.edges_between(a, b);
                        if pes.is_empty() {
                            return true;
                        }
                        let ges = g.edges_between(NodeId(idx[a] as u32), NodeId(idx[b] as u32));
                        if ges.len() < pes.len() {
                            return false;
                        }
                        // Per-label demand + total (mirrors the matcher).
                        pes.iter().all(|&pe| match q.edges()[pe].label {
                            PLabel::Wildcard => true,
                            PLabel::Is(l) => {
                                let need = pes
                                    .iter()
                                    .filter(|&&x| q.edges()[x].label == PLabel::Is(l))
                                    .count();
                                let have = ges.iter().filter(|&&e| g.edge(e).label == l).count();
                                have >= need
                            }
                        })
                    })
                });
            if ok_edges {
                count += 1;
            }
        }
        // Next tuple.
        for pos in (0..k).rev() {
            idx[pos] += 1;
            if idx[pos] < n {
                continue 'outer;
            }
            idx[pos] = 0;
            if pos == 0 {
                break 'outer;
            }
        }
        if k == 0 {
            break;
        }
    }
    count
}

fn small_patterns(g: &Graph) -> Vec<Pattern> {
    let i = g.interner();
    let t0 = PLabel::Is(i.label("t0"));
    let t1 = PLabel::Is(i.label("t1"));
    let r0 = PLabel::Is(i.label("r0"));
    let r1 = PLabel::Is(i.label("r1"));
    vec![
        Pattern::single(t0),
        Pattern::edge(t0, r0, t1),
        Pattern::edge(PLabel::Wildcard, r1, PLabel::Wildcard),
        Pattern::edge(t0, PLabel::Wildcard, PLabel::Wildcard),
        Pattern::edge(t0, r0, t1).extend(&Extension {
            src: End::Var(1),
            dst: End::Var(0),
            label: r1,
        }),
        Pattern::edge(t0, r0, t0).extend(&Extension {
            src: End::Var(1),
            dst: End::New(PLabel::Wildcard),
            label: PLabel::Wildcard,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matcher_agrees_with_brute_force((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for q in small_patterns(&g) {
            let fast = gfd::pattern::count_matches(&q, &g);
            let slow = brute_force_matches(&q, &g);
            prop_assert_eq!(fast, slow, "pattern {:?}", q.display(g.interner()));
        }
    }

    #[test]
    fn incremental_join_agrees_with_scratch((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let i = g.interner();
        let q = Pattern::edge(
            PLabel::Is(i.label("t0")),
            PLabel::Is(i.label("r0")),
            PLabel::Wildcard,
        );
        let base = find_all(&q, &g);
        let ext = Extension {
            src: End::Var(1),
            dst: End::New(PLabel::Wildcard),
            label: PLabel::Is(i.label("r1")),
        };
        let inc = gfd::pattern::extend_matches(&q, &base, &ext, &g);
        let scratch = find_all(&q.extend(&ext), &g);
        prop_assert_eq!(inc.len(), scratch.len());
    }

    #[test]
    fn pattern_support_anti_monotone_under_extension((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let i = g.interner();
        let q = Pattern::edge(PLabel::Is(i.label("t0")), PLabel::Wildcard, PLabel::Wildcard);
        let big = q.extend(&Extension {
            src: End::Var(1),
            dst: End::New(PLabel::Wildcard),
            label: PLabel::Wildcard,
        });
        prop_assert!(pattern_support(&q, &g) >= pattern_support(&big, &g));
    }

    #[test]
    fn vertex_cut_partitions_edges((n, edges) in arb_graph(), workers in 1usize..5) {
        let g = build(n, &edges);
        let p = gfd::parallel::vertex_cut(&g, workers);
        let total: usize = p.fragments.iter().map(|f| f.edge_count()).sum();
        prop_assert_eq!(total, g.edge_count());
        let mut seen = vec![false; g.edge_count()];
        for f in &p.fragments {
            for &eid in &f.edge_ids {
                prop_assert!(!seen[eid.index()]);
                seen[eid.index()] = true;
            }
        }
    }

    #[test]
    fn closure_is_idempotent_and_monotone(vals in proptest::collection::vec((0usize..3, 0u16..3, 0i64..4), 0..8)) {
        use gfd::logic::Closure;
        let lits: Vec<Literal> = vals
            .iter()
            .map(|&(v, a, c)| Literal::constant(v, gfd::graph::AttrId(a), Value::Int(c)))
            .collect();
        let c1 = Closure::of_literals(&lits);
        // Idempotent: re-adding changes nothing.
        let mut c2 = c1.clone();
        let mut changed = false;
        for l in &lits {
            changed |= c2.add(l);
        }
        prop_assert!(!changed);
        // Monotone: a conflicting subset keeps the superset conflicting.
        if c1.is_conflicting() {
            let mut bigger = lits.clone();
            bigger.push(Literal::constant(9, gfd::graph::AttrId(9), Value::Int(9)));
            prop_assert!(Closure::of_literals(&bigger).is_conflicting());
        }
        // Every added constant literal holds afterwards (absent conflict).
        if !c1.is_conflicting() {
            for l in &lits {
                prop_assert!(c1.holds(l));
            }
        }
    }

    #[test]
    fn implication_is_reflexive_and_weakening((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        if g.edge_count() == 0 {
            return Ok(());
        }
        let sigma = generate_gfds(&g, &GfdGenConfig { count: 6, k: 3, seed: 1, ..Default::default() });
        for phi in &sigma {
            prop_assert!(implies(&sigma, phi));
        }
    }
}

/// Fragment-local matching joins back to global matching (the §6.2
/// correctness invariant), tested deterministically on a KB.
#[test]
fn fragment_match_union_equals_global() {
    let g = std::sync::Arc::new(knowledge_base(
        &KbConfig::new(KbProfile::Yago2).with_scale(150),
    ));
    let i = g.interner();
    let q = Pattern::edge(
        PLabel::Is(i.lookup_label("person").unwrap()),
        PLabel::Is(i.lookup_label("create").unwrap()),
        PLabel::Is(i.lookup_label("product").unwrap()),
    );
    let global = gfd::pattern::count_matches(&q, &g);

    // Seed single-node matches per worker, join one extension, sum rows.
    use gfd::parallel::{Cluster, ClusterConfig, Task, TaskResult};
    let parts = gfd::parallel::edge_cut(&g, 4);
    let mut cluster = Cluster::new(
        g.clone(),
        parts.shards,
        &ClusterConfig::new(4, ExecMode::Simulated),
    );
    cluster
        .broadcast(Task::SeedRoot {
            node: 0,
            pattern: Pattern::single(PLabel::Is(i.lookup_label("person").unwrap())),
        })
        .expect("fault-free");
    let results = cluster
        .broadcast(Task::Join {
            parent: 0,
            child: 1,
            ext: Extension {
                src: End::Var(0),
                dst: End::New(PLabel::Is(i.lookup_label("product").unwrap())),
                label: PLabel::Is(i.lookup_label("create").unwrap()),
            },
        })
        .expect("fault-free");
    let mut rows = 0usize;
    for r in results {
        if let TaskResult::Joined { rows: rw, .. } = r {
            rows += rw;
        }
    }
    assert_eq!(rows, global);
}

/// Streaming matcher early-exit has no effect on counted prefix.
#[test]
fn streaming_enumeration_is_prefix_stable() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Imdb).with_scale(100));
    let i = g.interner();
    let q = Pattern::edge(
        PLabel::Is(i.lookup_label("actor").unwrap()),
        PLabel::Is(i.lookup_label("actedIn").unwrap()),
        PLabel::Is(i.lookup_label("movie").unwrap()),
    );
    let mut first_two = Vec::new();
    let _ = gfd::pattern::for_each_match(&q, &g, |m| {
        first_two.push(m.to_vec());
        if first_two.len() == 2 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    let all = find_all(&q, &g);
    assert_eq!(first_two[0], all.get(0));
    assert_eq!(first_two[1], all.get(1));
}
