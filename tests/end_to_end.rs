//! Cross-crate integration: full discovery pipelines over generated
//! knowledge bases, sequential/parallel equivalence, cover semantics, and
//! baseline comparisons.

use std::sync::Arc;

use gfd::prelude::*;

fn small_cfg() -> DiscoveryConfig {
    let mut cfg = DiscoveryConfig::new(3, 20);
    cfg.max_edges = 4;
    cfg.max_lhs_size = 1;
    cfg.values_per_attr = 4;
    cfg
}

#[test]
fn discovery_finds_planted_rules_on_yago() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(260));
    let result = seq_dis(&g, &small_cfg());
    assert!(!result.gfds.is_empty());

    // Planted φ3-style rule: mutual parent prohibited.
    let parent = g.interner().lookup_label("parent").unwrap();
    let mutual = result.gfds.iter().any(|d| {
        let q = d.gfd.pattern();
        d.gfd.is_negative()
            && d.gfd.lhs().is_empty()
            && q.edge_count() == 2
            && q.edges().iter().all(|e| e.label == PLabel::Is(parent))
            && q.edges_between(0, 1).len() == 1
            && q.edges_between(1, 0).len() == 1
    });
    assert!(mutual, "mutual-parent negative not found");

    // Every rule holds on the graph with at least σ support.
    for d in &result.gfds {
        assert!(satisfies(&g, &d.gfd));
        assert!(d.support >= 20);
        assert!(d.gfd.k() <= 3);
        assert!(!d.gfd.is_trivial());
    }
}

#[test]
fn full_pipeline_cover_is_equivalent_and_minimal() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Imdb).with_scale(200));
    let result = seq_dis(&g, &small_cfg());
    let rules = result.rules();
    let cover = seq_cover(&rules);
    assert!(cover.len() <= rules.len());
    // Σ_c ⊨ Σ.
    for phi in &rules {
        assert!(implies(&cover, phi), "{}", phi.display(g.interner()));
    }
    // Minimality.
    for i in 0..cover.len() {
        let rest: Vec<Gfd> = cover
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, r)| r.clone())
            .collect();
        assert!(!implies(&rest, &cover[i]));
    }
}

#[test]
fn parallel_pipeline_equals_sequential_on_kb() {
    let g = Arc::new(knowledge_base(
        &KbConfig::new(KbProfile::Yago2).with_scale(200),
    ));
    let cfg = small_cfg();
    let seq = seq_dis(&g, &cfg);
    let key = |r: &DiscoveryResult| {
        let mut v: Vec<String> = r
            .gfds
            .iter()
            .map(|d| format!("{} {}", d.gfd.display(g.interner()), d.support))
            .collect();
        v.sort();
        v
    };
    let seq_key = key(&seq);
    for n in [2, 5] {
        let report =
            par_dis(&g, &cfg, &ClusterConfig::new(n, ExecMode::Simulated)).expect("fault-free");
        assert_eq!(key(&report.result), seq_key, "n={n}");
    }
}

#[test]
fn parallel_cover_agrees_with_sequential_cover_semantics() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(200));
    let sigma = generate_gfds(
        &g,
        &GfdGenConfig {
            count: 120,
            specialization_rate: 0.5,
            ..Default::default()
        },
    );
    let seq = seq_cover(&sigma);
    for grouping in [true, false] {
        let par = par_cover(&sigma, 4, ExecMode::Simulated, grouping).expect("fault-free");
        let par_rules: Vec<Gfd> = par.cover.iter().map(|&i| sigma[i].clone()).collect();
        // Both covers imply the full set (equivalence) …
        for phi in &sigma {
            assert!(implies(&par_rules, phi));
            assert!(implies(&seq, phi));
        }
        // … and are minimal.
        for i in 0..par_rules.len() {
            let rest: Vec<Gfd> = par_rules
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, r)| r.clone())
                .collect();
            assert!(!implies(&rest, &par_rules[i]));
        }
    }
}

#[test]
fn discover_parallel_matches_sequential_cover() {
    let g = Arc::new(knowledge_base(
        &KbConfig::new(KbProfile::Yago2).with_scale(200),
    ));
    let cfg = small_cfg();

    // Every (rule, support) pair the sequential miner produces; parallel
    // discovery is equivalent (see parallel_pipeline_equals_sequential_on_kb),
    // so any pair outside this set means the facade's cover indices were
    // applied against the wrong ordering of `report.result.gfds`.
    let seq = seq_dis(&g, &cfg);
    let seq_pairs: std::collections::BTreeSet<String> = seq
        .gfds
        .iter()
        .map(|d| format!("{} @{}", d.gfd.display(g.interner()), d.support))
        .collect();
    let seq_cover: Vec<Gfd> = gfd::discover_with(&g, &cfg)
        .iter()
        .map(|d| d.gfd.clone())
        .collect();

    for workers in [2, 4] {
        let par = gfd::discover_parallel(&g, &cfg, workers);
        assert!(!par.is_empty(), "workers={workers}");

        // A misaligned cover index would pair a rule with another rule's
        // support (or duplicate a rule); both are detectable here.
        let mut seen = std::collections::BTreeSet::new();
        for d in &par {
            let pair = format!("{} @{}", d.gfd.display(g.interner()), d.support);
            assert!(
                seq_pairs.contains(&pair),
                "workers={workers}: (rule, support) pair not produced by discovery: {pair}"
            );
            assert!(
                seen.insert(d.gfd.display(g.interner())),
                "workers={workers}: duplicate rule in cover"
            );
        }

        // The parallel cover is equivalent to the sequential cover.
        let par_rules: Vec<Gfd> = par.iter().map(|d| d.gfd.clone()).collect();
        for phi in &seq_cover {
            assert!(implies(&par_rules, phi), "workers={workers}: par ⊭ seq");
        }
        for phi in &par_rules {
            assert!(implies(&seq_cover, phi), "workers={workers}: seq ⊭ par");
        }
    }
}

#[test]
fn discover_high_level_api() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(200));
    let cover = gfd::discover(&g, 3, 20);
    assert!(!cover.is_empty());
    // A cover never contains redundant rules.
    let rules: Vec<Gfd> = cover.iter().map(|d| d.gfd.clone()).collect();
    for i in 0..rules.len() {
        let rest: Vec<Gfd> = rules
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, r)| r.clone())
            .collect();
        assert!(!implies(&rest, &rules[i]));
    }
}

#[test]
fn noise_detection_beats_floor_and_baselines_run() {
    let clean = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(220));
    let cover = gfd::discover_with(&clean, &small_cfg());
    let rules: Vec<Gfd> = cover.iter().map(|d| d.gfd.clone()).collect();

    let noised = inject_noise(
        &clean,
        &NoiseConfig {
            alpha: 0.1,
            beta: 0.8,
            edge_share: 0.2,
            seed: 3,
        },
    );
    let detected = violating_nodes(&noised.graph, &rules);
    let acc = gfd::datagen::detection_accuracy(&detected, &noised.dirty);
    assert!(acc > 0.1, "GFD accuracy too low: {acc}");

    // Baselines execute on the same data.
    let gcfds = gfd::baselines::mine_gcfds(
        &clean,
        &gfd::baselines::GcfdConfig {
            k: 3,
            sigma: 20,
            max_lhs_size: 1,
            values_per_attr: 4,
        },
    );
    let amie = gfd::baselines::mine_amie(
        &clean,
        &gfd::baselines::AmieConfig {
            min_support: 20,
            ..Default::default()
        },
    );
    // GFDs are a superset formalism: at least as many rule shapes.
    assert!(!gcfds.is_empty());
    assert!(!amie.is_empty());
}

#[test]
fn graph_io_roundtrip_preserves_discovery() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Imdb).with_scale(150));
    let text = gfd::graph::io::to_text(&g);
    let h = gfd::graph::io::from_text(&text).expect("parse");
    let a = seq_dis(&g, &small_cfg());
    let b = seq_dis(&h, &small_cfg());
    let key = |r: &DiscoveryResult, g: &Graph| {
        let mut v: Vec<String> = r.gfds.iter().map(|d| d.gfd.display(g.interner())).collect();
        v.sort();
        v
    };
    assert_eq!(key(&a, &g), key(&b, &h));
}

#[test]
fn ablation_no_pruning_explodes_candidates() {
    let g = knowledge_base(&KbConfig::new(KbProfile::Yago2).with_scale(200));
    let mut pruned = small_cfg();
    pruned.mine_negative = false;
    let mut unpruned = pruned.clone();
    unpruned.enable_pruning = false;

    let with = seq_dis(&g, &pruned);
    let without = seq_dis(&g, &unpruned);
    assert!(
        without.stats.hspawn.candidates > with.stats.hspawn.candidates,
        "ParGFDn must check more candidates: {} vs {}",
        without.stats.hspawn.candidates,
        with.stats.hspawn.candidates
    );
}
