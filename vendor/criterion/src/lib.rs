//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the API surface the `gfd-bench` benches use
//! — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! `criterion_group!`, `criterion_main!` — backed by a simple
//! median-of-samples wall-clock timer. It produces honest relative
//! numbers for local comparison; it performs no statistical analysis,
//! outlier rejection, or HTML reporting.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut g);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` one-iteration samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up to populate caches / lazy statics.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], *b.samples.last().unwrap());
    println!(
        "bench {id:<48} median {median:>12.3?}   [{lo:.3?} .. {hi:.3?}]   n={}",
        b.samples.len()
    );
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0;
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
                b.iter(|| black_box(n * 2));
            });
            g.finish();
        }
        ran += 1;
        assert_eq!(ran, 1);
    }
}
