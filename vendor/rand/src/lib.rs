//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `rand` API that `gfd-datagen`
//! actually uses: a seedable deterministic generator ([`rngs::StdRng`]),
//! the [`SeedableRng`] constructor trait, and the [`RngExt`] extension
//! trait providing `random_range` / `random_bool`.
//!
//! The generator is SplitMix64 feeding xorshift-style mixing — fully
//! deterministic per seed, portable, and more than good enough for
//! synthetic-data generation (it is *not* cryptographic).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A range that a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}", self.start, self.end
                );
                // Span in i128 so signed ranges wider than the type's
                // positive max (e.g. -100i8..100) don't wrap.
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {}..={}", lo, hi);
                // u128 math: the full-type inclusive span (2^64) still fits.
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`. Panics on empty ranges.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
        }
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
            let w = rng.random_range(i64::MIN..=i64::MAX);
            let _ = w; // full-type span: any value is in range
            let x = rng.random_range(-1_000_000_000i64..1_000_000_000);
            assert!((-1_000_000_000..1_000_000_000).contains(&x));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
