//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the one API `gfd-parallel` uses —
//! [`channel::unbounded`] with [`channel::Sender`] / [`channel::Receiver`]
//! — backed by `std::sync::mpsc`. The std channel is MPSC rather than
//! MPMC, which is sufficient here: each worker owns its own task/result
//! channel pair.

#![forbid(unsafe_code)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel, like `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().take(10).collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
