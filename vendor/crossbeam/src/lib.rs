//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the APIs `gfd-parallel` uses:
//!
//! * [`channel::unbounded`] with [`channel::Sender`] / [`channel::Receiver`]
//!   — backed by `std::sync::mpsc`. The std channel is MPSC rather than
//!   MPMC, which is sufficient here: each worker owns its own task/result
//!   channel pair.
//! * [`deque`] — the `Injector`/`Worker`/`Stealer` work-stealing deques of
//!   `crossbeam-deque`, backed by `Mutex<VecDeque>`. Not lock-free, but the
//!   work units scheduled through them (joins, table scans, whole lattices)
//!   are orders of magnitude coarser than the lock hold time, and the API
//!   surface matches the real crate so swapping it in later is a one-line
//!   `Cargo.toml` change.

#![forbid(unsafe_code)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel, like `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Work-stealing deques, mirroring `crossbeam::deque`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, like `crossbeam::deque::Steal`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A shared FIFO injector queue: any thread may push, any may steal.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Empty queue.
        pub fn new() -> Injector<T> {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.q.lock().expect("injector poisoned").push_back(task);
        }

        /// Steals the task at the front.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().expect("injector poisoned").len()
        }
    }

    /// A worker-owned FIFO deque; other threads steal through [`Stealer`]s.
    #[derive(Debug)]
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Empty FIFO worker deque.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.q
                .lock()
                .expect("worker deque poisoned")
                .push_back(task);
        }

        /// Pops the next task in FIFO order.
        pub fn pop(&self) -> Option<T> {
            self.q.lock().expect("worker deque poisoned").pop_front()
        }

        /// A handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().expect("worker deque poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().expect("worker deque poisoned").len()
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Worker::new_fifo()
        }
    }

    /// A stealing handle onto a [`Worker`] deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the task at the victim's front.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().expect("worker deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().expect("worker deque poisoned").is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use super::deque::{Injector, Steal, Worker};
    use std::sync::Arc;

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().take(10).collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn injector_is_fifo_and_shared() {
        let inj = Arc::new(Injector::new());
        for i in 0..100 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 100);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Steal::Success(t) = inj.steal() {
                        got.push(t);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert!(inj.is_empty());
    }

    #[test]
    fn worker_and_stealer_share_one_deque() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(w.len(), 2);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
        assert!(w.is_empty());
    }
}
