//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate reimplements the slice of proptest's API the gfd test
//! suites use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, numeric-range and tuple strategies,
//! [`Just`], [`collection::vec`], [`option::of`], `prop_oneof!`, and the
//! `proptest!` test-harness macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, by design:
//!
//! * sampling is purely random (deterministic per test name) — there is
//!   **no shrinking**; a failing case reports its values via the assert
//!   message instead of a minimized counterexample;
//! * each test runs with a fixed seed derived from its name, so failures
//!   reproduce exactly across runs and machines.
//!
//! [`Just`]: strategy::Just

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case execution: config, RNG, and the error type test bodies return.

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A hard failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A soft rejection carrying `msg`.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// The `Result` type each generated test case body evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from a seed (typically hashed from the
        /// test name, so every test gets an independent stream).
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seeds from an arbitrary string, FNV-1a style.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `sample` draws a
    /// value directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `pred`, resampling on rejection.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Strategy yielding a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 samples in a row",
                self.whence
            );
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample empty range {}..{}", self.start, self.end
                    );
                    // Span in i128 so signed ranges wider than the type's
                    // positive max (e.g. -100i8..100) don't wrap.
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range {}..={}", lo, hi);
                    // u128 math: the full-type inclusive span (2^64) still fits.
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option<S::Value>`, biased toward `Some`.
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `None` a quarter of the time, `Some`
    /// otherwise (mirroring real proptest's default 3:1 weighting).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// The `prop::` module alias used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a proptest file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` running its
/// body over `cases` sampled inputs. Bodies evaluate to
/// [`test_runner::TestCaseResult`], so `prop_assert*` and early
/// `return Ok(())` both work.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                let strategies = ( $($strategy,)+ );
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while passed < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: gave up after {} attempts ({} cases passed; too many prop_assume rejections)",
                            stringify!($name), attempts - 1, passed,
                        );
                    }
                    let values = strategies.sample(&mut rng);
                    let ( $($arg,)+ ) = values;
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed (case {}): {}", stringify!($name), passed + 1, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -3i64..=3), v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(a < 10);
            prop_assert!((-3..=3).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_filter_and_assume(x in prop_oneof![Just(1u32), Just(2), (5u32..8).prop_map(|v| v)]) {
            prop_assume!(x != 2);
            prop_assert!(x == 1 || (5..8).contains(&x));
        }

        #[test]
        fn flat_map_dependent_lengths((n, v) in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..n, n..=n)))) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn wide_signed_ranges_stay_in_bounds(a in -100i8..100, b in -100i64..=100, c in i64::MIN..=i64::MAX) {
            prop_assert!((-100..100).contains(&a), "i8 out of range: {}", a);
            prop_assert!((-100..=100).contains(&b), "i64 out of range: {}", b);
            let _ = c; // full-type span: any value is in range
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
